package cfg

import "repro/internal/ir"

// DomTree is the dominator tree of a function, built with the
// Cooper–Harvey–Kennedy iterative algorithm over reverse postorder.
type DomTree struct {
	f        *ir.Function
	rpo      []*ir.Block
	rpoIndex map[*ir.Block]int
	idom     map[*ir.Block]*ir.Block
	children map[*ir.Block][]*ir.Block
	depth    map[*ir.Block]int
}

// BuildDomTree computes the dominator tree of f. Unreachable blocks are
// ignored; callers normally run RemoveUnreachable first.
func BuildDomTree(f *ir.Function) *DomTree {
	t := &DomTree{
		f:        f,
		rpo:      ReversePostorder(f),
		rpoIndex: make(map[*ir.Block]int),
		idom:     make(map[*ir.Block]*ir.Block),
		children: make(map[*ir.Block][]*ir.Block),
		depth:    make(map[*ir.Block]int),
	}
	for i, b := range t.rpo {
		t.rpoIndex[b] = i
	}
	entry := f.Entry()
	t.idom[entry] = entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for t.rpoIndex[a] > t.rpoIndex[b] {
				a = t.idom[a]
			}
			for t.rpoIndex[b] > t.rpoIndex[a] {
				b = t.idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range t.rpo[1:] {
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if _, ok := t.rpoIndex[p]; !ok {
					continue // unreachable predecessor
				}
				if t.idom[p] == nil {
					continue // not yet processed this round
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}

	for _, b := range t.rpo[1:] {
		t.children[t.idom[b]] = append(t.children[t.idom[b]], b)
	}
	// Depths in RPO order: idom always precedes its children in RPO.
	for _, b := range t.rpo[1:] {
		t.depth[b] = t.depth[t.idom[b]] + 1
	}
	return t
}

// Idom returns the immediate dominator of b; the entry block returns
// itself.
func (t *DomTree) Idom(b *ir.Block) *ir.Block { return t.idom[b] }

// Children returns the dominator-tree children of b.
func (t *DomTree) Children(b *ir.Block) []*ir.Block { return t.children[b] }

// Depth returns the dominator-tree depth of b (entry = 0).
func (t *DomTree) Depth(b *ir.Block) int { return t.depth[b] }

// RPO returns the reverse postorder the tree was built over.
func (t *DomTree) RPO() []*ir.Block { return t.rpo }

// RPOIndex returns b's reverse-postorder number, or -1 if unreachable.
func (t *DomTree) RPOIndex(b *ir.Block) int {
	if i, ok := t.rpoIndex[b]; ok {
		return i
	}
	return -1
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next := t.idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// StrictlyDominates reports whether a dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && t.Dominates(a, b)
}

// LCA returns the least common ancestor of a and b in the dominator
// tree: the deepest block that dominates both.
func (t *DomTree) LCA(a, b *ir.Block) *ir.Block {
	for t.depth[a] > t.depth[b] {
		a = t.idom[a]
	}
	for t.depth[b] > t.depth[a] {
		b = t.idom[b]
	}
	for a != b {
		a = t.idom[a]
		b = t.idom[b]
	}
	return a
}

// LeastCommonDominator returns the deepest block dominating every block
// in the list, or nil for an empty list.
func (t *DomTree) LeastCommonDominator(blocks []*ir.Block) *ir.Block {
	if len(blocks) == 0 {
		return nil
	}
	lca := blocks[0]
	for _, b := range blocks[1:] {
		lca = t.LCA(lca, b)
	}
	return lca
}

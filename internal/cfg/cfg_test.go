package cfg

import (
	"testing"

	"repro/internal/ir"
)

// buildGraph constructs a function with n blocks (b0 = entry) and the
// given edges. Blocks get the right terminator for their out-degree:
// ret (0), jmp (1), or br (2) on a fresh condition register.
func buildGraph(t *testing.T, n int, edges [][2]int) *ir.Function {
	t.Helper()
	p := ir.NewProgram()
	f := ir.NewFunction(p, "g")
	blocks := make([]*ir.Block, n)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	for _, e := range edges {
		ir.AddEdge(blocks[e[0]], blocks[e[1]])
	}
	for _, b := range blocks {
		switch len(b.Succs) {
		case 0:
			b.Append(ir.NewInstr(ir.OpRet, ir.NoReg))
		case 1:
			b.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
		case 2:
			c := f.NewReg("c")
			b.Append(ir.NewInstr(ir.OpCopy, c, ir.ConstVal(1)))
			term := ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(c))
			b.Append(term)
			// Move the copy before the branch (Append order already ok).
		default:
			t.Fatalf("block %d has %d successors", b.ID, len(b.Succs))
		}
	}
	return f
}

func block(f *ir.Function, id int) *ir.Block {
	for _, b := range f.Blocks {
		if int(b.ID) == id {
			return b
		}
	}
	return nil
}

func TestRPOStartsAtEntryAndCoversGraph(t *testing.T) {
	f := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	rpo := ReversePostorder(f)
	if len(rpo) != 4 {
		t.Fatalf("RPO has %d blocks, want 4", len(rpo))
	}
	if rpo[0] != f.Entry() {
		t.Fatalf("RPO[0] = %v, want entry", rpo[0])
	}
	pos := make(map[*ir.Block]int)
	for i, b := range rpo {
		pos[b] = i
	}
	// In a DAG, every edge goes forward in RPO.
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if pos[b] >= pos[s] {
				t.Errorf("edge %v->%v not forward in RPO", b, s)
			}
		}
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f := buildGraph(t, 4, [][2]int{{0, 1}, {2, 1}, {2, 3}}) // b2, b3 unreachable
	removed := RemoveUnreachable(f)
	if removed != 2 {
		t.Fatalf("removed %d blocks, want 2", removed)
	}
	if len(f.Blocks) != 2 {
		t.Fatalf("%d blocks remain, want 2", len(f.Blocks))
	}
	b1 := block(f, 1)
	if len(b1.Preds) != 1 {
		t.Fatalf("b1 preds = %v, want just b0", b1.Preds)
	}
	if err := f.Verify(ir.VerifyCFG); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveUnreachableCycle(t *testing.T) {
	// An unreachable cycle (b2 <-> b3) referencing a reachable block
	// must be fully removed along with its edges into b1.
	f := buildGraph(t, 4, [][2]int{{0, 1}, {2, 3}, {3, 2}, {2, 1}})
	removed := RemoveUnreachable(f)
	if removed != 2 {
		t.Fatalf("removed %d, want 2", removed)
	}
	b1 := block(f, 1)
	if len(b1.Preds) != 1 || b1.Preds[0] != block(f, 0) {
		t.Fatalf("b1 preds = %v, want [b0]", b1.Preds)
	}
	if err := f.Verify(ir.VerifyCFG); err != nil {
		t.Fatal(err)
	}
}

func TestDominatorsDiamondAndLoop(t *testing.T) {
	//      0
	//     / \
	//    1   2
	//     \ /
	//      3 -> 4 (loop 4->3 back edge via 5)
	f := buildGraph(t, 6, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 3}, {4, 5}})
	dom := BuildDomTree(f)
	want := map[int]int{1: 0, 2: 0, 3: 0, 4: 3, 5: 4}
	for b, d := range want {
		if got := dom.Idom(block(f, b)); got != block(f, d) {
			t.Errorf("idom(b%d) = %v, want b%d", b, got, d)
		}
	}
	if !dom.Dominates(block(f, 3), block(f, 5)) {
		t.Error("b3 should dominate b5")
	}
	if dom.Dominates(block(f, 1), block(f, 3)) {
		t.Error("b1 should not dominate b3")
	}
	if got := dom.LCA(block(f, 1), block(f, 2)); got != block(f, 0) {
		t.Errorf("LCA(b1,b2) = %v, want b0", got)
	}
	if got := dom.LeastCommonDominator([]*ir.Block{block(f, 4), block(f, 5), block(f, 1)}); got != block(f, 0) {
		t.Errorf("LCD = %v, want b0", got)
	}
}

func TestDominatorsCHKPaperGraph(t *testing.T) {
	// The irreducible example from Cooper, Harvey & Kennedy ("A Simple,
	// Fast Dominance Algorithm"), renumbered: 0->{1,2} 1->3 2->{4,3}
	// 3->4(?); their graph: 5->{4,3} 4->1 3->2 2->1 1->2. Use a compact
	// irreducible graph instead:
	//   0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 1 (irreducible region {1,3}? no)
	// True irreducible: 0->1, 0->2, 1->2, 2->1, 1->3, 2->3.
	f := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 1}, {1, 3}, {2, 3}})
	dom := BuildDomTree(f)
	for b := 1; b <= 3; b++ {
		if got := dom.Idom(block(f, b)); got != block(f, 0) {
			t.Errorf("idom(b%d) = %v, want b0", b, got)
		}
	}
}

func TestDominanceFrontiersDiamond(t *testing.T) {
	f := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	dom := BuildDomTree(f)
	df := BuildDomFrontiers(dom)
	if got := df.Of(block(f, 1)); len(got) != 1 || got[0] != block(f, 3) {
		t.Errorf("DF(b1) = %v, want [b3]", got)
	}
	if got := df.Of(block(f, 2)); len(got) != 1 || got[0] != block(f, 3) {
		t.Errorf("DF(b2) = %v, want [b3]", got)
	}
	if got := df.Of(block(f, 0)); len(got) != 0 {
		t.Errorf("DF(b0) = %v, want empty", got)
	}
	if got := df.Of(block(f, 3)); len(got) != 0 {
		t.Errorf("DF(b3) = %v, want empty", got)
	}
}

func TestDominanceFrontierLoopHeader(t *testing.T) {
	// 0 -> 1 -> 2 -> 1, 2 -> 3. Header b1 is in its own DF via back edge.
	f := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 1}, {2, 3}})
	dom := BuildDomTree(f)
	df := BuildDomFrontiers(dom)
	found := false
	for _, b := range df.Of(block(f, 2)) {
		if b == block(f, 1) {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(b2) = %v, want to contain b1", df.Of(block(f, 2)))
	}
}

func TestIteratedDF(t *testing.T) {
	// Two nested joins: defs in b1 and b2 force a phi at b3; def at b3
	// combined with edge structure can force more. Diamond of diamonds:
	// 0->1,2; 1->3; 2->3; 3->4,5; 4->6; 5->6; 6->ret
	f := buildGraph(t, 7, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {3, 5}, {4, 6}, {5, 6}})
	dom := BuildDomTree(f)
	df := BuildDomFrontiers(dom)
	idf := IteratedDF(df, []*ir.Block{block(f, 1)})
	want := map[*ir.Block]bool{block(f, 3): true}
	if len(idf) != 1 || !want[idf[0]] {
		t.Errorf("IDF({b1}) = %v, want [b3]", idf)
	}
	// A def in b4 propagates: DF(b4)={6}; DF(6)={} => IDF = {6}.
	idf = IteratedDF(df, []*ir.Block{block(f, 4), block(f, 1)})
	got := map[*ir.Block]bool{}
	for _, b := range idf {
		got[b] = true
	}
	if !got[block(f, 3)] || !got[block(f, 6)] || len(got) != 2 {
		t.Errorf("IDF({b4,b1}) = %v, want {b3,b6}", idf)
	}
}

func TestIteratedDFLoop(t *testing.T) {
	// Loop: def inside loop body must place phi at loop header, and the
	// header's phi is itself a def whose DF may add more blocks.
	// 0 -> 1(header) -> 2(body) -> 1, 2 -> 3(exit)
	f := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 1}, {2, 3}})
	dom := BuildDomTree(f)
	df := BuildDomFrontiers(dom)
	idf := IteratedDF(df, []*ir.Block{block(f, 2)})
	got := map[*ir.Block]bool{}
	for _, b := range idf {
		got[b] = true
	}
	if !got[block(f, 1)] {
		t.Errorf("IDF({b2}) = %v, want to contain loop header b1", idf)
	}
}

func TestIntervalsSiblingLoops(t *testing.T) {
	// Figure 1 shape: two sequential loops.
	// 0 -> 1 -> 1 (self loop), 1 -> 2 -> 2, 2 -> 3
	f := buildGraph(t, 4, [][2]int{{0, 1}, {1, 1}, {1, 2}, {2, 2}, {2, 3}})
	fo := BuildIntervals(f)
	if !fo.Root.Root || len(fo.Root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(fo.Root.Children))
	}
	for _, iv := range fo.Root.Children {
		if !iv.Proper() || len(iv.Blocks) != 1 || iv.Depth != 1 {
			t.Errorf("interval %v malformed: proper=%v blocks=%v", iv.Header, iv.Proper(), iv.Blocks)
		}
	}
	if fo.InnermostInterval(block(f, 3)) != fo.Root {
		t.Error("b3 should map to root interval")
	}
}

func TestIntervalsNestedLoops(t *testing.T) {
	// 0 -> 1 (outer hdr) -> 2 (inner hdr) -> 3 -> 2, 3 -> 4 -> 1, 4 -> 5
	f := buildGraph(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 2}, {3, 4}, {4, 1}, {4, 5}})
	fo := BuildIntervals(f)
	if len(fo.Root.Children) != 1 {
		t.Fatalf("root children = %d, want 1", len(fo.Root.Children))
	}
	outer := fo.Root.Children[0]
	if outer.Header != block(f, 1) || len(outer.Children) != 1 {
		t.Fatalf("outer interval header=%v children=%d", outer.Header, len(outer.Children))
	}
	inner := outer.Children[0]
	if inner.Header != block(f, 2) || inner.Depth != 2 {
		t.Fatalf("inner interval header=%v depth=%d", inner.Header, inner.Depth)
	}
	if fo.InnermostInterval(block(f, 3)) != inner {
		t.Error("b3 should map to inner interval")
	}
	if fo.InnermostInterval(block(f, 4)) != outer {
		t.Error("b4 should map to outer interval")
	}
	if !outer.Contains(block(f, 2)) || !outer.Contains(block(f, 3)) {
		t.Error("outer interval should contain nested blocks")
	}
	// Exit edges of inner: 3 -> 4.
	if len(inner.ExitEdges) != 1 || inner.ExitEdges[0].From != block(f, 3) || inner.ExitEdges[0].Tail != block(f, 4) {
		t.Errorf("inner exit edges = %v", inner.ExitEdges)
	}
}

func TestIntervalsImproper(t *testing.T) {
	// Irreducible: 0->1, 0->2, 1->2, 2->1, 1->3.
	f := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 1}, {1, 3}})
	fo := BuildIntervals(f)
	if len(fo.Root.Children) != 1 {
		t.Fatalf("root children = %d, want 1", len(fo.Root.Children))
	}
	iv := fo.Root.Children[0]
	if iv.Proper() {
		t.Error("interval should be improper")
	}
	if len(iv.Entries) != 2 {
		t.Errorf("entries = %v, want 2", iv.Entries)
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	// 0 -> 1, 0 -> 2, 1 -> 2: edge 0->2 is critical.
	f := buildGraph(t, 3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	n := SplitCriticalEdges(f)
	if n != 1 {
		t.Fatalf("split %d edges, want 1", n)
	}
	if err := f.Verify(ir.VerifyCFG); err != nil {
		t.Fatal(err)
	}
	// No critical edges remain.
	for _, b := range f.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for _, s := range b.Succs {
			if len(s.Preds) > 1 {
				t.Errorf("critical edge %v -> %v remains", b, s)
			}
		}
	}
}

func TestNormalizeCreatesPreheadersAndTails(t *testing.T) {
	// Loop with two outside entries into the header via a branch, and an
	// exit edge landing on a shared block:
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (3 = loop hdr), 3 -> 4, 4 -> 3, 4 -> 5
	f := buildGraph(t, 6, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 3}, {4, 5}})
	fo, err := Normalize(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(ir.VerifyCFG); err != nil {
		t.Fatal(err)
	}
	var loop *Interval
	fo.Root.Walk(func(iv *Interval) {
		if !iv.Root {
			loop = iv
		}
	})
	if loop == nil {
		t.Fatal("no interval found")
	}
	pre := loop.Preheader
	if pre == nil {
		t.Fatal("no preheader")
	}
	if loop.Contains(pre) {
		t.Error("preheader inside interval")
	}
	if len(pre.Succs) != 1 || pre.Succs[0] != loop.Header {
		t.Errorf("preheader %v does not uniquely precede header: succs=%v", pre, pre.Succs)
	}
	// Every outside edge into the interval goes through the preheader.
	for _, p := range loop.Header.Preds {
		if !loop.Contains(p) && p != pre {
			t.Errorf("header has outside pred %v besides preheader", p)
		}
	}
	// Tails are dedicated.
	for _, e := range loop.ExitEdges {
		if len(e.Tail.Preds) != 1 {
			t.Errorf("tail %v has %d preds, want 1", e.Tail, len(e.Tail.Preds))
		}
	}
	if fo.Root.Preheader != f.Entry() {
		t.Error("root preheader should be the function entry")
	}
}

func TestNormalizeImproperPreheader(t *testing.T) {
	f := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 1}, {1, 3}})
	fo, err := Normalize(f)
	if err != nil {
		t.Fatal(err)
	}
	var iv *Interval
	fo.Root.Walk(func(v *Interval) {
		if !v.Root {
			iv = v
		}
	})
	if iv == nil || iv.Proper() {
		t.Fatalf("expected improper interval, got %+v", iv)
	}
	if iv.Preheader == nil || iv.Contains(iv.Preheader) {
		t.Errorf("improper preheader = %v (must be outside interval)", iv.Preheader)
	}
	dom := BuildDomTree(f)
	for _, e := range iv.Entries {
		if !dom.Dominates(iv.Preheader, e) {
			t.Errorf("preheader %v does not dominate entry %v", iv.Preheader, e)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := buildGraph(t, 6, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 3}, {4, 5}})
	if _, err := Normalize(f); err != nil {
		t.Fatal(err)
	}
	n := len(f.Blocks)
	if _, err := Normalize(f); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != n {
		t.Errorf("second Normalize changed block count: %d -> %d", n, len(f.Blocks))
	}
}

func TestIntervalWalkBottomUp(t *testing.T) {
	f := buildGraph(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 2}, {3, 4}, {4, 1}, {4, 5}})
	fo := BuildIntervals(f)
	var order []int
	fo.Root.Walk(func(iv *Interval) { order = append(order, iv.Depth) })
	// Bottom-up: depths must be non-increasing along the visit of each
	// chain; the last visited is the root (depth 0).
	if order[len(order)-1] != 0 {
		t.Errorf("walk order %v does not end at root", order)
	}
	for i := 1; i < len(order); i++ {
		if order[i] > order[i-1] {
			// Only legal when starting a new subtree — but with a single
			// chain here, depths must strictly decrease.
			t.Errorf("walk order %v is not bottom-up", order)
		}
	}
}

package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

// randomCFG builds a random connected CFG with n blocks from a seed:
// block 0 is the entry, every other block gets an edge from some lower-
// numbered block (connectivity), plus extra random edges (including
// back edges, which create loops and irreducible regions).
func randomCFG(seed int64, n int) *ir.Function {
	rng := rand.New(rand.NewSource(seed))
	p := ir.NewProgram()
	f := ir.NewFunction(p, "rand")
	blocks := make([]*ir.Block, n)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	type edge struct{ from, to int }
	var edges []edge
	seen := map[edge]bool{}
	add := func(from, to int) {
		e := edge{from, to}
		// The entry block may not have predecessors (an IR invariant
		// the frontend guarantees and ir.Verify enforces).
		if from == to || to == 0 || seen[e] || len(blocks[from].Succs) >= 2 {
			return
		}
		seen[e] = true
		edges = append(edges, e)
		ir.AddEdge(blocks[from], blocks[to])
	}
	for i := 1; i < n; i++ {
		add(rng.Intn(i), i)
	}
	extra := rng.Intn(n + 1)
	for i := 0; i < extra; i++ {
		add(rng.Intn(n), 1+rng.Intn(n-1))
	}
	for _, b := range blocks {
		switch len(b.Succs) {
		case 0:
			b.Append(ir.NewInstr(ir.OpRet, ir.NoReg))
		case 1:
			b.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
		default:
			c := f.NewReg("c")
			b.Append(ir.NewInstr(ir.OpCopy, c, ir.ConstVal(1)))
			b.Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(c)))
		}
	}
	return f
}

// TestQuickDominatorInvariants checks, on random CFGs, the defining
// properties of dominator trees: the entry dominates every reachable
// block, idom strictly dominates its children, depth is parent+1, and
// LCA is the deepest common dominator.
func TestQuickDominatorInvariants(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomCFG(seed, 3+rng.Intn(14))
		RemoveUnreachable(f)
		dom := BuildDomTree(f)
		entry := f.Entry()
		for _, b := range dom.RPO() {
			if !dom.Dominates(entry, b) {
				t.Logf("seed %d: entry does not dominate %v", seed, b)
				return false
			}
			if b != entry {
				id := dom.Idom(b)
				if id == nil || !dom.StrictlyDominates(id, b) {
					t.Logf("seed %d: idom(%v)=%v not strict dominator", seed, b, id)
					return false
				}
				if dom.Depth(b) != dom.Depth(id)+1 {
					t.Logf("seed %d: depth(%v) != depth(idom)+1", seed, b)
					return false
				}
				// Every predecessor path must pass through idom: no
				// reachable predecessor may bypass it except via b
				// itself... weaker check: idom dominates every
				// reachable predecessor or equals entry.
				for _, p := range b.Preds {
					if dom.RPOIndex(p) < 0 {
						continue
					}
					if !dom.Dominates(id, p) && !dom.Dominates(b, p) {
						t.Logf("seed %d: idom(%v) does not cover pred %v", seed, b, p)
						return false
					}
				}
			}
		}
		// LCA properties: symmetric, dominates both sides, and is the
		// deepest such block among sampled candidates.
		blocks := dom.RPO()
		for i := 0; i < 10; i++ {
			a := blocks[rng.Intn(len(blocks))]
			b := blocks[rng.Intn(len(blocks))]
			l := dom.LCA(a, b)
			if l != dom.LCA(b, a) {
				return false
			}
			if !dom.Dominates(l, a) || !dom.Dominates(l, b) {
				return false
			}
			for _, c := range blocks {
				if dom.Dominates(c, a) && dom.Dominates(c, b) && dom.Depth(c) > dom.Depth(l) {
					t.Logf("seed %d: %v is a deeper common dominator than LCA %v", seed, c, l)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDominanceFrontierDefinition verifies DF against its
// definition on random CFGs: b is in DF(a) iff a dominates some
// predecessor of b but does not strictly dominate b.
func TestQuickDominanceFrontierDefinition(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomCFG(seed, 3+rng.Intn(12))
		RemoveUnreachable(f)
		dom := BuildDomTree(f)
		df := BuildDomFrontiers(dom)

		inDF := func(a, b *ir.Block) bool {
			for _, x := range df.Of(a) {
				if x == b {
					return true
				}
			}
			return false
		}
		for _, a := range dom.RPO() {
			for _, b := range dom.RPO() {
				want := false
				for _, p := range b.Preds {
					if dom.RPOIndex(p) >= 0 && dom.Dominates(a, p) && !dom.StrictlyDominates(a, b) {
						want = true
					}
				}
				if got := inDF(a, b); got != want {
					t.Logf("seed %d: DF(%v) contains %v = %v, want %v", seed, a, b, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIntervalInvariants checks interval forest properties on
// random CFGs: intervals partition into a tree, every block maps to its
// innermost interval, entries have outside predecessors, and interval
// blocks are strongly connected through the interval.
func TestQuickIntervalInvariants(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomCFG(seed, 3+rng.Intn(14))
		RemoveUnreachable(f)
		fo := BuildIntervals(f)

		ok := true
		fo.Root.Walk(func(iv *Interval) {
			if iv.Root {
				return
			}
			// Nesting: every block of iv is in its parent.
			for _, b := range iv.Blocks {
				if !iv.Parent.Contains(b) {
					t.Logf("seed %d: block %v of depth-%d interval missing from parent", seed, b, iv.Depth)
					ok = false
				}
			}
			// Entries have a predecessor outside the interval.
			for _, e := range iv.Entries {
				outside := false
				for _, p := range e.Preds {
					if !iv.Contains(p) {
						outside = true
					}
				}
				if !outside {
					t.Logf("seed %d: entry %v has no outside predecessor", seed, e)
					ok = false
				}
			}
			// Depth consistency.
			if iv.Depth != iv.Parent.Depth+1 {
				t.Logf("seed %d: bad depth", seed)
				ok = false
			}
			// Innermost mapping agrees with Contains.
			for _, b := range iv.Blocks {
				inner := fo.InnermostInterval(b)
				if !inner.Contains(b) {
					ok = false
				}
				if inner.Depth < iv.Depth {
					t.Logf("seed %d: innermost(%v) shallower than containing interval", seed, b)
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNormalizePostconditions: after Normalize, every proper
// interval has a dedicated preheader and every exit edge a dedicated
// tail, on random CFGs.
func TestQuickNormalizePostconditions(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomCFG(seed, 3+rng.Intn(14))
		fo, err := Normalize(f)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := f.Verify(ir.VerifyCFG); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ok := true
		fo.Root.Walk(func(iv *Interval) {
			if iv.Root {
				return
			}
			if iv.Preheader == nil {
				t.Logf("seed %d: interval without preheader", seed)
				ok = false
				return
			}
			if iv.Proper() {
				if iv.Contains(iv.Preheader) || len(iv.Preheader.Succs) != 1 {
					t.Logf("seed %d: preheader not dedicated", seed)
					ok = false
				}
			}
			for _, e := range iv.ExitEdges {
				if len(e.Tail.Preds) != 1 {
					t.Logf("seed %d: tail %v shared (%d preds)", seed, e.Tail, len(e.Tail.Preds))
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

package cfg_test

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/source"
	"repro/internal/workload"
)

// benchFunc compiles a large generated program and returns its biggest
// function, normalized, as a representative CFG for the analyses.
func benchFunc(b *testing.B) *ir.Function {
	b.Helper()
	gen, err := workload.SizedGenConfig(11, "large")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := source.Compile(workload.Generate(gen))
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	if err := alias.Analyze(prog); err != nil {
		b.Fatalf("Analyze: %v", err)
	}
	var best *ir.Function
	for _, f := range prog.Funcs {
		if _, err := cfg.Normalize(f); err != nil {
			b.Fatalf("Normalize(%s): %v", f.Name, err)
		}
		if best == nil || len(f.Blocks) > len(best.Blocks) {
			best = f
		}
	}
	return best
}

func BenchmarkBuildDomTree(b *testing.B) {
	f := benchFunc(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.BuildDomTree(f)
	}
}

func BenchmarkBuildDomFrontiers(b *testing.B) {
	f := benchFunc(b)
	dom := cfg.BuildDomTree(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.BuildDomFrontiers(dom)
	}
}

func BenchmarkIteratedDF(b *testing.B) {
	f := benchFunc(b)
	df := cfg.BuildDomFrontiers(cfg.BuildDomTree(f))
	// Every third block defines, a typical density for a promoted web.
	var defs []*ir.Block
	for i, blk := range f.Blocks {
		if i%3 == 0 {
			defs = append(defs, blk)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.IteratedDF(df, defs)
	}
}

func BenchmarkBuildIntervals(b *testing.B) {
	f := benchFunc(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.BuildIntervals(f)
	}
}

package cfg

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/ir"
)

// Interval is a strongly connected region of the CFG — usually a natural
// loop — in the sense used by the register promotion paper. Intervals
// nest, forming a tree whose root is a pseudo-interval covering the whole
// function body (the root is never itself promoted; it is the outermost
// scope into which inner promotions push their compensation loads and
// stores).
type Interval struct {
	// Header is the representative entry block: the unique entry of a
	// proper interval, or the lowest-RPO entry of an improper one.
	Header *ir.Block
	// Entries lists every block of the interval with a predecessor
	// outside it. Proper intervals have exactly one entry.
	Entries []*ir.Block
	// Blocks holds every block of the interval, including blocks of
	// nested child intervals, in reverse postorder.
	Blocks []*ir.Block
	// Children are the intervals nested immediately inside this one.
	Children []*Interval
	Parent   *Interval
	// Depth is the nesting depth; the root pseudo-interval has depth 0.
	Depth int
	// Root marks the whole-function pseudo-interval.
	Root bool

	// Preheader is the dedicated block that strictly dominates the whole
	// interval, where promotion places its initial loads. It is set by
	// Normalize (nil for the root, whose "preheader" is the entry block
	// itself).
	Preheader *ir.Block
	// ExitEdges lists the edges leaving the interval. After Normalize,
	// every exit edge's target (its "tail") has that edge as its only
	// incoming edge.
	ExitEdges []ExitEdge

	blockSet *bitset.Dense // membership by ir.BlockID
}

// ExitEdge is an edge from a block inside an interval to one outside.
// Tail is the target block, which after normalization is dedicated to
// this edge.
type ExitEdge struct {
	From *ir.Block
	Tail *ir.Block
}

// Proper reports whether the interval has a single entry block.
func (iv *Interval) Proper() bool { return len(iv.Entries) == 1 }

// Contains reports whether b belongs to the interval (including nested
// children).
func (iv *Interval) Contains(b *ir.Block) bool { return iv.blockSet.Has(int(b.ID)) }

// Walk visits the interval and its descendants bottom-up (children
// before parents), the traversal order of the promotion driver.
func (iv *Interval) Walk(visit func(*Interval)) {
	for _, c := range iv.Children {
		c.Walk(visit)
	}
	visit(iv)
}

// Forest is the interval tree of one function.
type Forest struct {
	// Root is the whole-function pseudo-interval.
	Root *Interval
	// innermost[id] is the innermost interval containing the block with
	// that ID (nil for unreachable blocks).
	innermost []*Interval
}

// InnermostInterval returns the innermost interval containing b (the
// root pseudo-interval if b is in no loop, nil if b is unreachable or
// was created after the forest was built).
func (fo *Forest) InnermostInterval(b *ir.Block) *Interval {
	if int(b.ID) >= len(fo.innermost) {
		return nil
	}
	return fo.innermost[b.ID]
}

// BuildIntervals computes the interval forest of f using nested
// strongly-connected-component decomposition: every non-trivial SCC of
// the CFG is an interval; removing its entry blocks and re-running SCC
// inside exposes nested intervals. This handles improper (multi-entry,
// irreducible) regions uniformly.
func BuildIntervals(f *ir.Function) *Forest {
	bound := int(f.BlockIDBound())
	rpo := ReversePostorder(f)
	rpoIdx := make([]int32, bound)
	for i := range rpoIdx {
		rpoIdx[i] = -1
	}
	for i, b := range rpo {
		rpoIdx[b.ID] = int32(i)
	}

	root := &Interval{
		Header:   f.Entry(),
		Entries:  []*ir.Block{f.Entry()},
		Blocks:   rpo,
		Root:     true,
		blockSet: bitset.NewDense(bound),
	}
	for _, b := range rpo {
		root.blockSet.Set(int(b.ID))
	}
	fo := &Forest{Root: root, innermost: make([]*Interval, bound)}
	for _, b := range rpo {
		fo.innermost[b.ID] = root
	}

	scratch := newSCCState(bound)
	var decompose func(parent *Interval, nodes []*ir.Block, inScope *bitset.Dense)
	decompose = func(parent *Interval, nodes []*ir.Block, inScope *bitset.Dense) {
		for _, scc := range scratch.run(nodes, inScope) {
			if len(scc) == 1 && !hasSelfLoop(scc[0]) {
				continue
			}
			iv := newInterval(scc, rpoIdx, bound)
			iv.Parent = parent
			iv.Depth = parent.Depth + 1
			parent.Children = append(parent.Children, iv)
			for _, b := range iv.Blocks {
				fo.innermost[b.ID] = iv
			}
			// Recurse inside, with the entries removed, to find nested
			// intervals.
			inner := bitset.NewDense(bound)
			for _, b := range scc {
				inner.Set(int(b.ID))
			}
			for _, e := range iv.Entries {
				inner.Clear(int(e.ID))
			}
			var innerNodes []*ir.Block
			for _, b := range iv.Blocks {
				if inner.Has(int(b.ID)) {
					innerNodes = append(innerNodes, b)
				}
			}
			decompose(iv, innerNodes, inner)
		}
	}
	decompose(root, rpo, root.blockSet)

	// innermost currently maps to the shallowest; fix by walking down.
	var fixInnermost func(iv *Interval)
	fixInnermost = func(iv *Interval) {
		for _, b := range iv.Blocks {
			if fo.innermost[b.ID].Depth < iv.Depth {
				fo.innermost[b.ID] = iv
			}
		}
		for _, c := range iv.Children {
			fixInnermost(c)
		}
	}
	fixInnermost(root)

	computeExitEdges(root)
	return fo
}

func newInterval(scc []*ir.Block, rpoIdx []int32, bound int) *Interval {
	iv := &Interval{blockSet: bitset.NewDense(bound)}
	for _, b := range scc {
		iv.blockSet.Set(int(b.ID))
	}
	sort.Slice(scc, func(i, j int) bool { return rpoIdx[scc[i].ID] < rpoIdx[scc[j].ID] })
	iv.Blocks = scc
	for _, b := range scc {
		for _, p := range b.Preds {
			if !iv.blockSet.Has(int(p.ID)) {
				iv.Entries = append(iv.Entries, b)
				break
			}
		}
	}
	if len(iv.Entries) == 0 {
		// Degenerate: unreachable cycle; treat lowest-RPO block as entry.
		iv.Entries = []*ir.Block{scc[0]}
	}
	iv.Header = iv.Entries[0]
	return iv
}

func hasSelfLoop(b *ir.Block) bool {
	for _, s := range b.Succs {
		if s == b {
			return true
		}
	}
	return false
}

func computeExitEdges(iv *Interval) {
	for _, c := range iv.Children {
		computeExitEdges(c)
	}
	if iv.Root {
		return
	}
	iv.ExitEdges = iv.ExitEdges[:0]
	for _, b := range iv.Blocks {
		for _, s := range b.Succs {
			if !iv.blockSet.Has(int(s.ID)) {
				iv.ExitEdges = append(iv.ExitEdges, ExitEdge{From: b, Tail: s})
			}
		}
	}
}

// sccState is the reusable scratch state of Tarjan's algorithm, sized
// once per BuildIntervals call and reset (O(nodes visited)) between
// nested runs instead of reallocating maps.
type sccState struct {
	index   []int32 // -1 = unvisited
	low     []int32
	onStack *bitset.Dense
	stack   []*ir.Block
	next    int32
}

func newSCCState(bound int) *sccState {
	s := &sccState{
		index:   make([]int32, bound),
		low:     make([]int32, bound),
		onStack: bitset.NewDense(bound),
	}
	for i := range s.index {
		s.index[i] = -1
	}
	return s
}

// run returns the SCCs of the subgraph induced by nodes (edges
// restricted to inScope) via Tarjan's algorithm, with each SCC's
// members in stack-pop order as in the classic formulation.
func (s *sccState) run(nodes []*ir.Block, inScope *bitset.Dense) [][]*ir.Block {
	// Reset only the entries the previous run touched.
	for _, v := range nodes {
		s.index[v.ID] = -1
		s.onStack.Clear(int(v.ID))
	}
	s.stack = s.stack[:0]
	s.next = 0
	var sccs [][]*ir.Block

	var strong func(v *ir.Block)
	strong = func(v *ir.Block) {
		s.index[v.ID] = s.next
		s.low[v.ID] = s.next
		s.next++
		s.stack = append(s.stack, v)
		s.onStack.Set(int(v.ID))
		for _, w := range v.Succs {
			if !inScope.Has(int(w.ID)) {
				continue
			}
			if s.index[w.ID] < 0 {
				strong(w)
				if s.low[w.ID] < s.low[v.ID] {
					s.low[v.ID] = s.low[w.ID]
				}
			} else if s.onStack.Has(int(w.ID)) && s.index[w.ID] < s.low[v.ID] {
				s.low[v.ID] = s.index[w.ID]
			}
		}
		if s.low[v.ID] == s.index[v.ID] {
			var scc []*ir.Block
			for {
				w := s.stack[len(s.stack)-1]
				s.stack = s.stack[:len(s.stack)-1]
				s.onStack.Clear(int(w.ID))
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if s.index[v.ID] < 0 {
			strong(v)
		}
	}
	return sccs
}

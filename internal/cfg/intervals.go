package cfg

import (
	"sort"

	"repro/internal/ir"
)

// Interval is a strongly connected region of the CFG — usually a natural
// loop — in the sense used by the register promotion paper. Intervals
// nest, forming a tree whose root is a pseudo-interval covering the whole
// function body (the root is never itself promoted; it is the outermost
// scope into which inner promotions push their compensation loads and
// stores).
type Interval struct {
	// Header is the representative entry block: the unique entry of a
	// proper interval, or the lowest-RPO entry of an improper one.
	Header *ir.Block
	// Entries lists every block of the interval with a predecessor
	// outside it. Proper intervals have exactly one entry.
	Entries []*ir.Block
	// Blocks holds every block of the interval, including blocks of
	// nested child intervals, in reverse postorder.
	Blocks []*ir.Block
	// Children are the intervals nested immediately inside this one.
	Children []*Interval
	Parent   *Interval
	// Depth is the nesting depth; the root pseudo-interval has depth 0.
	Depth int
	// Root marks the whole-function pseudo-interval.
	Root bool

	// Preheader is the dedicated block that strictly dominates the whole
	// interval, where promotion places its initial loads. It is set by
	// Normalize (nil for the root, whose "preheader" is the entry block
	// itself).
	Preheader *ir.Block
	// ExitEdges lists the edges leaving the interval. After Normalize,
	// every exit edge's target (its "tail") has that edge as its only
	// incoming edge.
	ExitEdges []ExitEdge

	blockSet map[*ir.Block]bool
}

// ExitEdge is an edge from a block inside an interval to one outside.
// Tail is the target block, which after normalization is dedicated to
// this edge.
type ExitEdge struct {
	From *ir.Block
	Tail *ir.Block
}

// Proper reports whether the interval has a single entry block.
func (iv *Interval) Proper() bool { return len(iv.Entries) == 1 }

// Contains reports whether b belongs to the interval (including nested
// children).
func (iv *Interval) Contains(b *ir.Block) bool { return iv.blockSet[b] }

// Walk visits the interval and its descendants bottom-up (children
// before parents), the traversal order of the promotion driver.
func (iv *Interval) Walk(visit func(*Interval)) {
	for _, c := range iv.Children {
		c.Walk(visit)
	}
	visit(iv)
}

// Forest is the interval tree of one function.
type Forest struct {
	// Root is the whole-function pseudo-interval.
	Root *Interval
	// innermost maps each block to the innermost interval containing it.
	innermost map[*ir.Block]*Interval
}

// InnermostInterval returns the innermost interval containing b (the
// root pseudo-interval if b is in no loop).
func (fo *Forest) InnermostInterval(b *ir.Block) *Interval { return fo.innermost[b] }

// BuildIntervals computes the interval forest of f using nested
// strongly-connected-component decomposition: every non-trivial SCC of
// the CFG is an interval; removing its entry blocks and re-running SCC
// inside exposes nested intervals. This handles improper (multi-entry,
// irreducible) regions uniformly.
func BuildIntervals(f *ir.Function) *Forest {
	rpo := ReversePostorder(f)
	rpoIdx := make(map[*ir.Block]int, len(rpo))
	for i, b := range rpo {
		rpoIdx[b] = i
	}

	root := &Interval{
		Header:   f.Entry(),
		Entries:  []*ir.Block{f.Entry()},
		Blocks:   rpo,
		Root:     true,
		blockSet: make(map[*ir.Block]bool, len(rpo)),
	}
	for _, b := range rpo {
		root.blockSet[b] = true
	}
	fo := &Forest{Root: root, innermost: make(map[*ir.Block]*Interval, len(rpo))}
	for _, b := range rpo {
		fo.innermost[b] = root
	}

	var decompose func(parent *Interval, nodes []*ir.Block, inScope map[*ir.Block]bool)
	decompose = func(parent *Interval, nodes []*ir.Block, inScope map[*ir.Block]bool) {
		for _, scc := range stronglyConnected(nodes, inScope) {
			if len(scc) == 1 && !hasSelfLoop(scc[0]) {
				continue
			}
			iv := newInterval(scc, rpoIdx)
			iv.Parent = parent
			iv.Depth = parent.Depth + 1
			parent.Children = append(parent.Children, iv)
			for _, b := range iv.Blocks {
				fo.innermost[b] = iv
			}
			// Recurse inside, with the entries removed, to find nested
			// intervals.
			inner := make(map[*ir.Block]bool, len(scc))
			for _, b := range scc {
				inner[b] = true
			}
			for _, e := range iv.Entries {
				delete(inner, e)
			}
			var innerNodes []*ir.Block
			for _, b := range iv.Blocks {
				if inner[b] {
					innerNodes = append(innerNodes, b)
				}
			}
			decompose(iv, innerNodes, inner)
		}
	}
	decompose(root, rpo, root.blockSet)

	// innermost currently maps to the shallowest; fix by walking down.
	var fixInnermost func(iv *Interval)
	fixInnermost = func(iv *Interval) {
		for _, b := range iv.Blocks {
			if fo.innermost[b].Depth < iv.Depth {
				fo.innermost[b] = iv
			}
		}
		for _, c := range iv.Children {
			fixInnermost(c)
		}
	}
	fixInnermost(root)

	computeExitEdges(root)
	return fo
}

func newInterval(scc []*ir.Block, rpoIdx map[*ir.Block]int) *Interval {
	iv := &Interval{blockSet: make(map[*ir.Block]bool, len(scc))}
	for _, b := range scc {
		iv.blockSet[b] = true
	}
	sort.Slice(scc, func(i, j int) bool { return rpoIdx[scc[i]] < rpoIdx[scc[j]] })
	iv.Blocks = scc
	for _, b := range scc {
		for _, p := range b.Preds {
			if !iv.blockSet[p] {
				iv.Entries = append(iv.Entries, b)
				break
			}
		}
	}
	if len(iv.Entries) == 0 {
		// Degenerate: unreachable cycle; treat lowest-RPO block as entry.
		iv.Entries = []*ir.Block{scc[0]}
	}
	iv.Header = iv.Entries[0]
	return iv
}

func hasSelfLoop(b *ir.Block) bool {
	for _, s := range b.Succs {
		if s == b {
			return true
		}
	}
	return false
}

func computeExitEdges(iv *Interval) {
	for _, c := range iv.Children {
		computeExitEdges(c)
	}
	if iv.Root {
		return
	}
	iv.ExitEdges = iv.ExitEdges[:0]
	for _, b := range iv.Blocks {
		for _, s := range b.Succs {
			if !iv.blockSet[s] {
				iv.ExitEdges = append(iv.ExitEdges, ExitEdge{From: b, Tail: s})
			}
		}
	}
}

// stronglyConnected returns the non-trivial-or-singleton SCCs of the
// subgraph induced by nodes (edges restricted to inScope), in an order
// where each SCC's members keep their input order stability via Tarjan's
// algorithm.
func stronglyConnected(nodes []*ir.Block, inScope map[*ir.Block]bool) [][]*ir.Block {
	index := make(map[*ir.Block]int, len(nodes))
	low := make(map[*ir.Block]int, len(nodes))
	onStack := make(map[*ir.Block]bool, len(nodes))
	var stack []*ir.Block
	var sccs [][]*ir.Block
	next := 0

	var strong func(v *ir.Block)
	strong = func(v *ir.Block) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range v.Succs {
			if !inScope[w] {
				continue
			}
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*ir.Block
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return sccs
}

package cfg

import "repro/internal/ir"

// DomFrontiers maps each block to its dominance frontier.
type DomFrontiers map[*ir.Block][]*ir.Block

// BuildDomFrontiers computes dominance frontiers with the Cytron et al.
// two-pointer walk: for every join block b, each predecessor p and every
// dominator of p up to (but excluding) idom(b) has b in its frontier.
func BuildDomFrontiers(t *DomTree) DomFrontiers {
	df := make(DomFrontiers)
	inDF := make(map[*ir.Block]map[*ir.Block]bool)
	add := func(runner, b *ir.Block) {
		set := inDF[runner]
		if set == nil {
			set = make(map[*ir.Block]bool)
			inDF[runner] = set
		}
		if !set[b] {
			set[b] = true
			df[runner] = append(df[runner], b)
		}
	}
	for _, b := range t.RPO() {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if t.RPOIndex(p) < 0 {
				continue
			}
			runner := p
			for runner != t.Idom(b) {
				add(runner, b)
				runner = t.Idom(runner)
			}
		}
	}
	return df
}

// IteratedDF returns the iterated dominance frontier of the given set of
// definition blocks: the fixed point DF+(S) used for phi placement. The
// worklist formulation processes every definition site in one pass, which
// is the batch usage the paper's incremental SSA update calls for (one
// IDF computation for all cloned definitions, standing in for the
// Sreedhar–Gao linear-time placement it cites).
func IteratedDF(df DomFrontiers, defs []*ir.Block) []*ir.Block {
	inResult := make(map[*ir.Block]bool)
	queued := make(map[*ir.Block]bool)
	var result []*ir.Block
	work := make([]*ir.Block, 0, len(defs))
	for _, d := range defs {
		if !queued[d] {
			queued[d] = true
			work = append(work, d)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, fb := range df[b] {
			if !inResult[fb] {
				inResult[fb] = true
				result = append(result, fb)
				if !queued[fb] {
					queued[fb] = true
					work = append(work, fb)
				}
			}
		}
	}
	return result
}

package cfg

import (
	"repro/internal/bitset"
	"repro/internal/ir"
)

// DomFrontiers holds each block's dominance frontier, indexed by
// ir.BlockID. The zero value is empty; pass DomFrontiers by value (it
// is two words).
type DomFrontiers struct {
	f  *ir.Function
	of [][]*ir.Block
}

// Of returns the dominance frontier of b (nil for unreachable blocks or
// blocks created after the analysis was built).
func (d DomFrontiers) Of(b *ir.Block) []*ir.Block {
	if int(b.ID) >= len(d.of) {
		return nil
	}
	return d.of[b.ID]
}

// Func returns the function the frontiers were built for.
func (d DomFrontiers) Func() *ir.Function { return d.f }

// Valid reports whether the frontiers were actually built (the zero
// value is not valid). Callers accepting an optional DomFrontiers use
// this to distinguish "not supplied" from "supplied but empty".
func (d DomFrontiers) Valid() bool { return d.f != nil }

// BuildDomFrontiers computes dominance frontiers with the Cytron et al.
// two-pointer walk: for every join block b, each predecessor p and every
// dominator of p up to (but excluding) idom(b) has b in its frontier.
func BuildDomFrontiers(t *DomTree) DomFrontiers {
	df := DomFrontiers{f: t.f, of: make([][]*ir.Block, int(t.f.BlockIDBound()))}
	for _, b := range t.RPO() {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if t.RPOIndex(p) < 0 {
				continue
			}
			for runner := p; runner != t.Idom(b); runner = t.Idom(runner) {
				// The join b is fixed while its preds are walked, so a
				// duplicate can only be the most recent append.
				fr := df.of[runner.ID]
				if n := len(fr); n == 0 || fr[n-1] != b {
					df.of[runner.ID] = append(fr, b)
				}
			}
		}
	}
	return df
}

// IteratedDF returns the iterated dominance frontier of the given set of
// definition blocks: the fixed point DF+(S) used for phi placement. The
// worklist formulation processes every definition site in one pass, which
// is the batch usage the paper's incremental SSA update calls for (one
// IDF computation for all cloned definitions, standing in for the
// Sreedhar–Gao linear-time placement it cites).
func IteratedDF(df DomFrontiers, defs []*ir.Block) []*ir.Block {
	if len(defs) == 0 {
		return nil
	}
	bound := len(df.of)
	inResult := bitset.NewDense(bound)
	queued := bitset.NewDense(bound)
	var result []*ir.Block
	work := make([]*ir.Block, 0, len(defs))
	for _, d := range defs {
		if !queued.Has(int(d.ID)) {
			queued.Set(int(d.ID))
			work = append(work, d)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, fb := range df.Of(b) {
			if !inResult.Has(int(fb.ID)) {
				inResult.Set(int(fb.ID))
				result = append(result, fb)
				if !queued.Has(int(fb.ID)) {
					queued.Set(int(fb.ID))
					work = append(work, fb)
				}
			}
		}
	}
	return result
}

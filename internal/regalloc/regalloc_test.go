package regalloc_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/regalloc"
)

// straightLine builds r0=1; r1=2; r2=r0+r1; print r2; ret — r0 and r1
// overlap, r2 overlaps neither at definition time.
func TestStraightLineInterference(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFunction(p, "s")
	r0, r1, r2 := f.NewReg("a"), f.NewReg("b"), f.NewReg("c")
	b := f.NewBlock()
	b.Append(ir.NewInstr(ir.OpCopy, r0, ir.ConstVal(1)))
	b.Append(ir.NewInstr(ir.OpCopy, r1, ir.ConstVal(2)))
	b.Append(ir.NewInstr(ir.OpAdd, r2, ir.RegVal(r0), ir.RegVal(r1)))
	b.Append(ir.NewInstr(ir.OpPrint, ir.NoReg, ir.RegVal(r2)))
	b.Append(ir.NewInstr(ir.OpRet, ir.NoReg))

	res := regalloc.Allocate(f)
	if res.Colors != 2 {
		t.Errorf("colors = %d, want 2", res.Colors)
	}
	if res.MaxLive != 2 {
		t.Errorf("maxlive = %d, want 2", res.MaxLive)
	}
	if res.Assignment[r0] == res.Assignment[r1] {
		t.Error("overlapping registers share a color")
	}
}

func TestCopyDoesNotInterfere(t *testing.T) {
	// d = copy s with s dead after: d and s can share a color.
	p := ir.NewProgram()
	f := ir.NewFunction(p, "c")
	s, d := f.NewReg("s"), f.NewReg("d")
	b := f.NewBlock()
	b.Append(ir.NewInstr(ir.OpCopy, s, ir.ConstVal(7)))
	b.Append(ir.NewInstr(ir.OpCopy, d, ir.RegVal(s)))
	b.Append(ir.NewInstr(ir.OpPrint, ir.NoReg, ir.RegVal(d)))
	b.Append(ir.NewInstr(ir.OpRet, ir.NoReg))

	res := regalloc.Allocate(f)
	if res.Colors != 1 {
		t.Errorf("colors = %d, want 1 (copy-related values coalesce)", res.Colors)
	}
}

func TestDisjointLiveRangesShareColors(t *testing.T) {
	// Two values never simultaneously live need one color.
	p := ir.NewProgram()
	f := ir.NewFunction(p, "d")
	a, bb := f.NewReg("a"), f.NewReg("b")
	blk := f.NewBlock()
	blk.Append(ir.NewInstr(ir.OpCopy, a, ir.ConstVal(1)))
	blk.Append(ir.NewInstr(ir.OpPrint, ir.NoReg, ir.RegVal(a)))
	blk.Append(ir.NewInstr(ir.OpCopy, bb, ir.ConstVal(2)))
	blk.Append(ir.NewInstr(ir.OpPrint, ir.NoReg, ir.RegVal(bb)))
	blk.Append(ir.NewInstr(ir.OpRet, ir.NoReg))

	res := regalloc.Allocate(f)
	if res.Colors != 1 {
		t.Errorf("colors = %d, want 1", res.Colors)
	}
}

func TestLoopCarriedLiveness(t *testing.T) {
	// A value live around a loop back edge interferes with loop-body
	// temporaries.
	p := ir.NewProgram()
	f := ir.NewFunction(p, "l")
	n := f.NewReg("n")
	f.Params = []ir.RegID{n}
	acc, tmp, cond := f.NewReg("acc"), f.NewReg("tmp"), f.NewReg("cond")
	entry, header, body, exit := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	entry.Append(ir.NewInstr(ir.OpCopy, acc, ir.ConstVal(0)))
	entry.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	ir.AddEdge(entry, header)
	header.Append(ir.NewInstr(ir.OpLt, cond, ir.RegVal(acc), ir.RegVal(n)))
	header.Append(ir.NewInstr(ir.OpBr, ir.NoReg, ir.RegVal(cond)))
	ir.AddEdge(header, body)
	ir.AddEdge(header, exit)
	body.Append(ir.NewInstr(ir.OpAdd, tmp, ir.RegVal(acc), ir.ConstVal(3)))
	body.Append(ir.NewInstr(ir.OpCopy, acc, ir.RegVal(tmp)))
	body.Append(ir.NewInstr(ir.OpJmp, ir.NoReg))
	ir.AddEdge(body, header)
	exit.Append(ir.NewInstr(ir.OpPrint, ir.NoReg, ir.RegVal(acc)))
	exit.Append(ir.NewInstr(ir.OpRet, ir.NoReg))

	res := regalloc.Allocate(f)
	// n and acc are simultaneously live through the loop.
	if res.Assignment[n] == res.Assignment[acc] {
		t.Error("n and acc interfere but share a color")
	}
	if res.Colors < 2 {
		t.Errorf("colors = %d, want >= 2", res.Colors)
	}
}

func TestColorsAtLeastMaxLive(t *testing.T) {
	out, err := pipeline.Run(`
int a; int b; int c; int d;
void main() {
	int i;
	for (i = 0; i < 50; i++) {
		a += i; b += a; c += b; d += c;
	}
	print(a + b + c + d);
}`, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range out.Prog.Funcs {
		res := regalloc.Allocate(f)
		if res.Colors < res.MaxLive {
			t.Errorf("%s: colors %d < maxlive %d (impossible)", f.Name, res.Colors, res.MaxLive)
		}
	}
}

// TestPromotionIncreasesPressure reproduces the direction of the
// paper's Table 3: promoting four globals held in registers through a
// loop raises the color count relative to the unpromoted program.
func TestPromotionIncreasesPressure(t *testing.T) {
	src := `
int a; int b; int c; int d;
void main() {
	int i;
	for (i = 0; i < 50; i++) {
		a += i; b += a; c += b; d += c;
	}
	print(a + b + c + d);
}`
	unpromoted, err := pipeline.Run(src, pipeline.Options{Algorithm: pipeline.AlgNone})
	if err != nil {
		t.Fatal(err)
	}
	promoted, err := pipeline.Run(src, pipeline.Options{Algorithm: pipeline.AlgSSA})
	if err != nil {
		t.Fatal(err)
	}
	before := regalloc.Allocate(unpromoted.Prog.Func("main"))
	after := regalloc.Allocate(promoted.Prog.Func("main"))
	if after.Colors <= before.Colors {
		t.Errorf("promotion should raise pressure: before %d colors, after %d",
			before.Colors, after.Colors)
	}
}

func TestAllocateProgramDeterministicOrder(t *testing.T) {
	out, err := pipeline.Run(`
int g;
void zebra() { g++; }
void apple() { g--; }
void main() { zebra(); apple(); }`, pipeline.Options{SkipMeasurement: true})
	if err != nil {
		t.Fatal(err)
	}
	_, names := regalloc.AllocateProgram(out.Prog)
	want := []string{"apple", "main", "zebra"}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

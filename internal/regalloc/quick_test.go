package regalloc_test

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/regalloc"
	"repro/internal/workload"
)

// TestQuickColoringIsValid: on random generated programs (promoted and
// destructed), the produced coloring must be proper — no two
// interfering registers share a color — and Colors >= MaxLive must
// hold.
func TestQuickColoringIsValid(t *testing.T) {
	property := func(seed int64) bool {
		src := workload.Generate(workload.DefaultGenConfig(seed))
		out, err := pipeline.Run(src, pipeline.Options{
			StaticProfile:   true,
			SkipMeasurement: true,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, f := range out.Prog.Funcs {
			res := regalloc.Allocate(f)
			if res.Colors < res.MaxLive {
				t.Logf("seed %d %s: colors %d < maxlive %d", seed, f.Name, res.Colors, res.MaxLive)
				return false
			}
			if !validColoring(f, res) {
				t.Logf("seed %d %s: interfering registers share a color", seed, f.Name)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// validColoring re-derives interference from scratch (via a second
// liveness pass embedded in Allocate's own data) by checking that every
// pair of registers simultaneously live at some point has distinct
// colors. It replays the same backward walk Allocate uses, but checks
// instead of builds.
func validColoring(f *ir.Function, res *regalloc.Result) bool {
	// Recompute per-block live-out with an independent, simple
	// iteration.
	liveOut := make(map[*ir.Block]map[ir.RegID]bool)
	liveIn := make(map[*ir.Block]map[ir.RegID]bool)
	for _, b := range f.Blocks {
		liveOut[b] = map[ir.RegID]bool{}
		liveIn[b] = map[ir.RegID]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := map[ir.RegID]bool{}
			for _, s := range b.Succs {
				for r := range liveIn[s] {
					out[r] = true
				}
			}
			in := map[ir.RegID]bool{}
			for r := range out {
				in[r] = true
			}
			for k := len(b.Instrs) - 1; k >= 0; k-- {
				instr := b.Instrs[k]
				if instr.HasDst() {
					delete(in, instr.Dst)
				}
				for _, a := range instr.Args {
					if !a.IsConst() {
						in[a.Reg()] = true
					}
				}
			}
			if len(out) != len(liveOut[b]) || len(in) != len(liveIn[b]) {
				changed = true
			}
			liveOut[b], liveIn[b] = out, in
		}
	}

	conflict := func(a, b ir.RegID) bool {
		ca, cb := res.Assignment[a], res.Assignment[b]
		return ca >= 0 && cb >= 0 && ca == cb
	}
	for _, b := range f.Blocks {
		live := map[ir.RegID]bool{}
		for r := range liveOut[b] {
			live[r] = true
		}
		for k := len(b.Instrs) - 1; k >= 0; k-- {
			instr := b.Instrs[k]
			if instr.HasDst() {
				copySrc := ir.NoReg
				if instr.Op == ir.OpCopy && !instr.Args[0].IsConst() {
					copySrc = instr.Args[0].Reg()
				}
				for r := range live {
					if r != instr.Dst && r != copySrc && conflict(instr.Dst, r) {
						return false
					}
				}
				delete(live, instr.Dst)
			}
			for _, a := range instr.Args {
				if !a.IsConst() {
					live[a.Reg()] = true
				}
			}
		}
	}
	return true
}

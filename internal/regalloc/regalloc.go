// Package regalloc measures register pressure: it builds the virtual
// register interference graph from a liveness analysis and colors it
// with a Chaitin/Briggs-style simplify-and-select pass, reporting the
// number of colors needed — the metric of the paper's Table 3, which
// shows register promotion trading memory traffic for register
// pressure.
package regalloc

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/liveness"
)

// Result describes one function's register pressure.
type Result struct {
	// Colors is the number of colors the greedy simplify/select
	// coloring needed — the paper's register pressure measure.
	Colors int
	// Nodes counts registers that are live somewhere (isolated dead
	// registers are excluded).
	Nodes int
	// Edges counts interference edges.
	Edges int
	// MaxLive is the largest number of registers simultaneously live at
	// any program point, a lower bound on Colors.
	MaxLive int
	// Assignment maps each register to its color, or -1 for registers
	// that never interfere (and never live).
	Assignment []int
}

// Allocate computes liveness, builds the interference graph, and colors
// it. It accepts SSA or non-SSA IR: phi uses count as live-out of the
// corresponding predecessor, phi definitions interfere like ordinary
// definitions at block entry.
func Allocate(f *ir.Function) *Result {
	return AllocateWith(f, liveness.Compute(f))
}

// AllocateWith colors f using an already-computed liveness analysis
// (typically from the analysis cache). The Info must describe f's
// current instruction stream; MaxLive is taken from it directly, so
// regalloc and the static analysis layer can never disagree.
func AllocateWith(f *ir.Function, info *liveness.Info) *Result {
	n := f.NumRegs

	// Interference graph. Walk each block backward from live-out; a
	// definition interferes with everything live across it. Copies get
	// the classic exception: `d = copy s` does not make d and s
	// interfere (they may share a register).
	adj := make([]map[ir.RegID]bool, n)
	addEdge := func(a, b ir.RegID) {
		if a == b {
			return
		}
		if adj[a] == nil {
			adj[a] = make(map[ir.RegID]bool)
		}
		if adj[b] == nil {
			adj[b] = make(map[ir.RegID]bool)
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	everLive := make([]bool, n)
	for _, b := range f.Blocks {
		live := make(map[ir.RegID]bool)
		info.LiveOut[b.ID].ForEach(func(r int) { live[ir.RegID(r)] = true })
		for k := len(b.Instrs) - 1; k >= 0; k-- {
			instr := b.Instrs[k]
			if instr.HasDst() {
				everLive[instr.Dst] = true
				copySrc := ir.NoReg
				if instr.Op == ir.OpCopy && !instr.Args[0].IsConst() {
					copySrc = instr.Args[0].Reg()
				}
				for r := range live {
					if r != instr.Dst && r != copySrc {
						addEdge(instr.Dst, r)
					}
				}
				delete(live, instr.Dst)
			}
			if instr.Op != ir.OpPhi {
				for _, a := range instr.Args {
					if !a.IsConst() {
						live[a.Reg()] = true
						everLive[a.Reg()] = true
					}
				}
			}
		}
	}
	info.LiveIn[f.Entry().ID].ForEach(func(r int) { everLive[r] = true })
	for _, p := range f.Params {
		everLive[p] = true
	}

	return color(n, adj, everLive, info.MaxLive)
}

// color runs smallest-last simplify ordering and greedy select,
// returning the coloring statistics.
func color(n int, adj []map[ir.RegID]bool, everLive []bool, maxLive int) *Result {
	res := &Result{MaxLive: maxLive, Assignment: make([]int, n)}
	for i := range res.Assignment {
		res.Assignment[i] = -1
	}

	degree := make([]int, n)
	var nodes []ir.RegID
	for r := 0; r < n; r++ {
		if everLive[r] {
			nodes = append(nodes, ir.RegID(r))
			degree[r] = len(adj[r])
			res.Edges += len(adj[r])
		}
	}
	res.Edges /= 2
	res.Nodes = len(nodes)
	if res.Nodes == 0 {
		return res
	}

	// Simplify: repeatedly push a minimum-degree node.
	removed := make([]bool, n)
	stack := make([]ir.RegID, 0, len(nodes))
	remaining := len(nodes)
	for remaining > 0 {
		best := ir.NoReg
		for _, r := range nodes {
			if removed[r] {
				continue
			}
			if best == ir.NoReg || degree[r] < degree[best] {
				best = r
			}
		}
		removed[best] = true
		remaining--
		stack = append(stack, best)
		for nb := range adj[best] {
			if !removed[nb] {
				degree[nb]--
			}
		}
	}

	// Select: color in reverse removal order with the lowest free color.
	for i := len(stack) - 1; i >= 0; i-- {
		r := stack[i]
		used := make(map[int]bool, len(adj[r]))
		for nb := range adj[r] {
			if c := res.Assignment[nb]; c >= 0 {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		res.Assignment[r] = c
		if c+1 > res.Colors {
			res.Colors = c + 1
		}
	}
	return res
}

// AllocateProgram colors every function and returns results keyed by
// function name, plus a deterministic name order for reporting.
func AllocateProgram(prog *ir.Program) (map[string]*Result, []string) {
	results := make(map[string]*Result, len(prog.Funcs))
	var names []string
	for _, f := range prog.Funcs {
		results[f.Name] = Allocate(f)
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return results, names
}

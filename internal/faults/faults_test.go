package faults_test

import (
	"strings"
	"testing"

	"repro/internal/faults"
)

func TestFireMatchesStageAndFunc(t *testing.T) {
	in := faults.New(faults.Plan{Stage: "promote", Func: "helper"})
	if err := in.Fire("promote", "main"); err != nil {
		t.Fatalf("wrong function fired: %v", err)
	}
	if err := in.Fire("ssa-build", "helper"); err != nil {
		t.Fatalf("wrong stage fired: %v", err)
	}
	if err := in.Fire("promote", "helper"); err == nil {
		t.Fatal("matching site did not fire")
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", in.Fired())
	}
}

func TestFireEmptyFuncMatchesAll(t *testing.T) {
	in := faults.New(faults.Plan{Stage: "promote"})
	if err := in.Fire("promote", "anything"); err == nil {
		t.Fatal("wildcard function plan did not fire")
	}
}

func TestPanicMode(t *testing.T) {
	in := faults.New(faults.Plan{Stage: "promote", Mode: faults.ModePanic})
	defer func() {
		rec := recover()
		ip, ok := rec.(faults.InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v, want InjectedPanic", rec)
		}
		if ip.Stage != "promote" || ip.Func != "f" {
			t.Fatalf("panic site = %+v", ip)
		}
	}()
	in.Fire("promote", "f")
	t.Fatal("ModePanic did not panic")
}

func TestCountCapsFirings(t *testing.T) {
	in := faults.New(faults.Plan{Stage: "promote", Count: 2})
	for i := 0; i < 5; i++ {
		in.Fire("promote", "f")
	}
	if in.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", in.Fired())
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *faults.Injector
	if err := in.Fire("promote", "f"); err != nil {
		t.Fatal("nil injector fired")
	}
	if in.Fired() != 0 || in.Sites() != nil {
		t.Fatal("nil injector has state")
	}
}

func TestSitesRecorded(t *testing.T) {
	in := faults.New()
	in.Fire("compile", "")
	in.Fire("promote", "main")
	in.Fire("promote", "main")
	got := in.Sites()
	want := []string{"compile/", "promote/main"}
	if len(got) != len(want) {
		t.Fatalf("Sites() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sites() = %v, want %v", got, want)
		}
	}
}

func TestParsePlan(t *testing.T) {
	cases := []struct {
		in   string
		want faults.Plan
		err  bool
	}{
		{in: "promote", want: faults.Plan{Stage: "promote"}},
		{in: "promote:panic", want: faults.Plan{Stage: "promote", Mode: faults.ModePanic}},
		{in: "promote/helper:error", want: faults.Plan{Stage: "promote", Func: "helper"}},
		{in: "ssa-build/f", want: faults.Plan{Stage: "ssa-build", Func: "f"}},
		{in: "promote:bogus", err: true},
		{in: ":panic", err: true},
		{in: "", err: true},
	}
	for _, c := range cases {
		got, err := faults.ParsePlan(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParsePlan(%q) succeeded, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePlan(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if rt, err := faults.ParsePlan(got.String()); err != nil || rt != got {
			t.Errorf("round-trip of %q via %q failed: %+v, %v", c.in, got.String(), rt, err)
		}
	}
}

func TestNewSeededIsDeterministic(t *testing.T) {
	stages := []string{"compile", "promote", "destruct"}
	a := faults.NewSeeded(42, stages)
	b := faults.NewSeeded(42, stages)
	// Both must fire (or not) identically across all sites.
	for _, st := range stages {
		ea := fireOutcome(a, st)
		eb := fireOutcome(b, st)
		if ea != eb {
			t.Fatalf("seeded injectors disagree at %s: %q vs %q", st, ea, eb)
		}
	}
	if a.Fired() == 0 {
		t.Fatal("seeded injector never fired on its own stage list")
	}
}

func fireOutcome(in *faults.Injector, stage string) (outcome string) {
	defer func() {
		if rec := recover(); rec != nil {
			outcome = "panic"
		}
	}()
	if err := in.Fire(stage, "f"); err != nil {
		if !strings.Contains(err.Error(), stage) {
			return "error-wrong-site"
		}
		return "error"
	}
	return "none"
}

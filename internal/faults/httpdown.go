package faults

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// ErrReplicaDown is the sentinel wrapped by every blackout-injected
// transport failure, so router code and tests can tell a synthetic
// replica loss from a real network error with errors.Is.
var ErrReplicaDown = errors.New("faults: injected replica blackout")

// ReplicaBlackout is a deterministic transport-level fault injector:
// an http.RoundTripper wrapper that fails every request to a blacked-
// out host the way a kill -9'd replica would — the connection attempt
// errors, no bytes flow. Router tests use it to drive replica loss,
// rebalancing, and recovery without real processes, and with exact
// control over *when* in the request sequence the loss happens
// (DownAfter), which a real kill cannot give.
//
// Hosts are matched on the request URL's Host (host:port). The zero
// value is not usable; call NewReplicaBlackout.
type ReplicaBlackout struct {
	inner http.RoundTripper

	mu    sync.Mutex
	down  map[string]bool
	after map[string]int // remaining requests until the host goes down
	seen  map[string]int // requests observed per host (diagnostics)
}

// NewReplicaBlackout wraps inner (nil = http.DefaultTransport).
func NewReplicaBlackout(inner http.RoundTripper) *ReplicaBlackout {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &ReplicaBlackout{
		inner: inner,
		down:  make(map[string]bool),
		after: make(map[string]int),
		seen:  make(map[string]int),
	}
}

// Down blacks out host immediately: every subsequent request to it
// fails with ErrReplicaDown until Up.
func (b *ReplicaBlackout) Down(host string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down[host] = true
	delete(b.after, host)
}

// Up restores host.
func (b *ReplicaBlackout) Up(host string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.down, host)
	delete(b.after, host)
}

// DownAfter arms a countdown: the next n requests to host succeed,
// then the host goes down — mid-run replica loss at a deterministic
// point in the request sequence.
func (b *ReplicaBlackout) DownAfter(host string, n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= 0 {
		b.down[host] = true
		return
	}
	b.after[host] = n
}

// Requests reports how many requests (allowed or failed) targeted host.
func (b *ReplicaBlackout) Requests(host string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seen[host]
}

// RoundTrip implements http.RoundTripper.
func (b *ReplicaBlackout) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	b.mu.Lock()
	b.seen[host]++
	dead := b.down[host]
	if n, armed := b.after[host]; armed && !dead {
		// This request is one of the allowed n; the blackout takes
		// effect on the request after the countdown empties.
		n--
		if n <= 0 {
			delete(b.after, host)
			b.down[host] = true
		} else {
			b.after[host] = n
		}
	}
	b.mu.Unlock()
	if dead {
		return nil, fmt.Errorf("dial tcp %s: %w", host, ErrReplicaDown)
	}
	return b.inner.RoundTrip(req)
}

package faults

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestReplicaBlackoutDownUp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	host := ts.Listener.Addr().String()

	b := NewReplicaBlackout(nil)
	client := &http.Client{Transport: b}

	if _, err := client.Get(ts.URL); err != nil {
		t.Fatalf("healthy request: %v", err)
	}
	b.Down(host)
	if _, err := client.Get(ts.URL); !errors.Is(err, ErrReplicaDown) {
		t.Fatalf("blacked-out request: err = %v, want ErrReplicaDown", err)
	}
	b.Up(host)
	if _, err := client.Get(ts.URL); err != nil {
		t.Fatalf("restored request: %v", err)
	}
	if got := b.Requests(host); got != 3 {
		t.Fatalf("Requests = %d, want 3", got)
	}
}

func TestReplicaBlackoutDownAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	host := ts.Listener.Addr().String()

	b := NewReplicaBlackout(nil)
	client := &http.Client{Transport: b}
	b.DownAfter(host, 2)

	// Exactly two requests succeed, then the host is dead.
	for i := 0; i < 2; i++ {
		if _, err := client.Get(ts.URL); err != nil {
			t.Fatalf("request %d within countdown: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := client.Get(ts.URL); !errors.Is(err, ErrReplicaDown) {
			t.Fatalf("request after countdown: err = %v, want ErrReplicaDown", err)
		}
	}
}

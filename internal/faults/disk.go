package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjectedDisk is the sentinel wrapped by every injected disk fault,
// so storage code and tests can tell synthetic failures from real ones
// with errors.Is.
var ErrInjectedDisk = errors.New("faults: injected disk fault")

// DiskPlan configures the disk chaos layer: per-operation fault
// probabilities, an added latency per operation, and the seed that makes
// the whole sequence deterministic. The zero plan injects nothing.
type DiskPlan struct {
	// ReadErr is the probability in [0, 1] that a read fails before
	// touching the file.
	ReadErr float64
	// WriteErr is the probability in [0, 1] that a write fails before
	// any byte reaches disk.
	WriteErr float64
	// ChecksumErr is the probability in [0, 1] that a read's checksum
	// verification is forced to fail, driving the corruption-quarantine
	// path on an otherwise healthy entry.
	ChecksumErr float64
	// SlowIO is added to every disk operation, fault or not.
	SlowIO time.Duration
	// Seed drives the deterministic fault sequence (0 is a valid seed).
	Seed int64
}

// ParseDiskPlan parses a comma-separated "key=value" spec, e.g.
// "read=0.3,write=0.3,checksum=0.1,slow=2ms,seed=7". Unknown keys and
// probabilities outside [0, 1] are errors.
func ParseDiskPlan(s string) (DiskPlan, error) {
	var p DiskPlan
	if strings.TrimSpace(s) == "" {
		return p, fmt.Errorf("faults: empty disk plan")
	}
	prob := func(key, val string) (float64, error) {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 || f > 1 {
			return 0, fmt.Errorf("faults: disk plan %s=%q: want a probability in [0, 1]", key, val)
		}
		return f, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return p, fmt.Errorf("faults: disk plan term %q: want key=value", part)
		}
		var err error
		switch key {
		case "read":
			p.ReadErr, err = prob(key, val)
		case "write":
			p.WriteErr, err = prob(key, val)
		case "checksum":
			p.ChecksumErr, err = prob(key, val)
		case "slow":
			p.SlowIO, err = time.ParseDuration(val)
			if err == nil && p.SlowIO < 0 {
				err = fmt.Errorf("faults: disk plan slow=%q: want >= 0", val)
			}
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			err = fmt.Errorf("faults: unknown disk plan key %q (want read, write, checksum, slow, or seed)", key)
		}
		if err != nil {
			return p, err
		}
	}
	return p, nil
}

// String renders the plan in the syntax accepted by ParseDiskPlan.
func (p DiskPlan) String() string {
	return fmt.Sprintf("read=%g,write=%g,checksum=%g,slow=%s,seed=%d",
		p.ReadErr, p.WriteErr, p.ChecksumErr, p.SlowIO, p.Seed)
}

// DiskInjector fires storage faults according to a DiskPlan. A nil
// injector never fires and adds no latency, so storage code can hold one
// unconditionally. The fault sequence is a pure function of the plan's
// seed and the order of operations; it is safe for concurrent use (under
// concurrency the interleaving, and thus which operation draws which
// fault, follows the scheduler — per-operation probabilities still
// hold).
type DiskInjector struct {
	plan DiskPlan

	mu       sync.Mutex
	rng      *rand.Rand
	reads    int
	writes   int
	checksum int
}

// NewDisk returns an injector for the plan.
func NewDisk(plan DiskPlan) *DiskInjector {
	return &DiskInjector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// fire draws one fault decision and applies the slow-IO latency.
func (d *DiskInjector) fire(p float64, count *int) bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	hit := p > 0 && d.rng.Float64() < p
	if hit {
		*count++
	}
	slow := d.plan.SlowIO
	d.mu.Unlock()
	if slow > 0 {
		time.Sleep(slow)
	}
	return hit
}

// Read returns an injected error for a read of key, or nil.
func (d *DiskInjector) Read(key string) error {
	if d != nil && d.fire(d.plan.ReadErr, &d.reads) {
		return fmt.Errorf("%w: read %s", ErrInjectedDisk, key)
	}
	return nil
}

// Write returns an injected error for a write of key, or nil.
func (d *DiskInjector) Write(key string) error {
	if d != nil && d.fire(d.plan.WriteErr, &d.writes) {
		return fmt.Errorf("%w: write %s", ErrInjectedDisk, key)
	}
	return nil
}

// Checksum reports whether checksum verification for key should be
// forced to fail.
func (d *DiskInjector) Checksum(key string) bool {
	return d != nil && d.fire(d.plan.ChecksumErr, &d.checksum)
}

// Counts reports how many read, write, and checksum faults have fired.
func (d *DiskInjector) Counts() (reads, writes, checksums int) {
	if d == nil {
		return 0, 0, 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes, d.checksum
}

// Package faults is a deterministic fault injector for testing the
// pipeline's failure paths. A fault plan names a pipeline stage (and
// optionally a function) at which the injector fires, either returning
// an error or panicking — the two failure shapes a real compiler bug
// produces. Because the pipeline consults the injector at every stage
// boundary, every recovery and degradation path can be driven on
// demand, deterministically, from a test or from the command line.
//
// Injection sites are identified by a (stage, function) pair; whole-
// program stages use an empty function name. The injector also records
// every site it was consulted at, so coverage tests can assert that a
// run actually reached the stage they meant to break.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// Mode selects how an injected fault manifests.
type Mode int

const (
	// ModeError makes the stage return an error.
	ModeError Mode = iota
	// ModePanic makes the stage panic.
	ModePanic
)

// String names the mode.
func (m Mode) String() string {
	if m == ModePanic {
		return "panic"
	}
	return "error"
}

// Plan selects injection sites. A plan matches a site when the stage
// names are equal and either the plan's Func is empty or equals the
// site's function.
type Plan struct {
	// Stage is the pipeline stage to fault (required).
	Stage string
	// Func restricts the fault to one function; empty matches all.
	Func string
	// Mode is how the fault manifests (error or panic).
	Mode Mode
	// Count caps how many times this plan fires (0 = every match).
	Count int
}

// String renders the plan in the stage[/func][:mode] syntax accepted by
// ParsePlan.
func (p Plan) String() string {
	s := p.Stage
	if p.Func != "" {
		s += "/" + p.Func
	}
	return s + ":" + p.Mode.String()
}

// ParsePlan parses "stage[/func][:mode]", e.g. "promote/helper:panic".
// The mode defaults to error.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if mode, rest, ok := cutLast(s, ":"); ok {
		switch rest {
		case "error":
			p.Mode = ModeError
		case "panic":
			p.Mode = ModePanic
		default:
			return p, fmt.Errorf("faults: unknown mode %q (want error or panic)", rest)
		}
		s = mode
	}
	if stage, fn, ok := strings.Cut(s, "/"); ok {
		p.Stage, p.Func = stage, fn
	} else {
		p.Stage = s
	}
	if p.Stage == "" {
		return p, fmt.Errorf("faults: empty stage in plan")
	}
	return p, nil
}

func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// InjectedPanic is the value an injector panics with in ModePanic, so
// recovery code and tests can recognize synthetic faults.
type InjectedPanic struct {
	Stage string
	Func  string
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at %s/%s", p.Stage, p.Func)
}

// Injector fires faults according to its plans. The zero value (and a
// nil injector) never fires. Injector is safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	plans []Plan
	fired int
	seen  map[string]int // sites consulted, "stage/func" -> count
}

// New returns an injector with the given plans.
func New(plans ...Plan) *Injector {
	return &Injector{plans: plans, seen: make(map[string]int)}
}

// NewSeeded derives one plan deterministically from seed: it picks a
// stage from stages and a mode from the seed's bits. Fuzzers and stress
// tests use this to sweep the fault space reproducibly.
func NewSeeded(seed int64, stages []string) *Injector {
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Mode: Mode(rng.Intn(2))}
	if len(stages) > 0 {
		p.Stage = stages[rng.Intn(len(stages))]
	}
	return New(p)
}

// Fire is called by instrumented code at the injection site for the
// given stage and function. It returns an error (ModeError) or panics
// (ModePanic) when a plan matches, and returns nil otherwise. A nil
// injector never fires.
func (in *Injector) Fire(stage, fn string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	if in.seen == nil {
		in.seen = make(map[string]int)
	}
	in.seen[stage+"/"+fn]++
	var hit *Plan
	for i := range in.plans {
		p := &in.plans[i]
		if p.Stage != stage || (p.Func != "" && p.Func != fn) {
			continue
		}
		if p.Count < 0 { // exhausted
			continue
		}
		hit = p
		break
	}
	if hit == nil {
		in.mu.Unlock()
		return nil
	}
	if hit.Count > 0 {
		hit.Count--
		if hit.Count == 0 {
			hit.Count = -1 // exhausted (0 means unlimited)
		}
	}
	in.fired++
	mode := hit.Mode
	in.mu.Unlock()
	if mode == ModePanic {
		panic(InjectedPanic{Stage: stage, Func: fn})
	}
	return fmt.Errorf("faults: injected error at %s/%s", stage, fn)
}

// Fired reports how many faults the injector has injected.
func (in *Injector) Fired() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Sites returns every "stage/func" site the injector was consulted at,
// sorted, regardless of whether a fault fired there.
func (in *Injector) Sites() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	sites := make([]string, 0, len(in.seen))
	for s := range in.seen {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	return sites
}

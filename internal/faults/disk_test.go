package faults

import (
	"errors"
	"testing"
	"time"
)

// TestParseDiskPlan checks the spec syntax round-trips and rejects
// malformed terms.
func TestParseDiskPlan(t *testing.T) {
	p, err := ParseDiskPlan("read=0.25,write=1,checksum=0,slow=2ms,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := DiskPlan{ReadErr: 0.25, WriteErr: 1, ChecksumErr: 0, SlowIO: 2 * time.Millisecond, Seed: 42}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if rt, err := ParseDiskPlan(p.String()); err != nil || rt != p {
		t.Fatalf("round trip: %+v (err %v), want %+v", rt, err, p)
	}

	for _, bad := range []string{
		"", "read", "read=2", "write=-0.1", "slow=-1ms", "seed=x", "burn=1",
	} {
		if _, err := ParseDiskPlan(bad); err == nil {
			t.Fatalf("ParseDiskPlan(%q) accepted, want error", bad)
		}
	}
}

// TestDiskInjectorDeterminism checks two injectors with the same plan
// fire the same faults in the same order.
func TestDiskInjectorDeterminism(t *testing.T) {
	plan := DiskPlan{ReadErr: 0.5, WriteErr: 0.5, ChecksumErr: 0.5, Seed: 7}
	a, b := NewDisk(plan), NewDisk(plan)
	for i := 0; i < 64; i++ {
		ae, be := a.Read("k"), b.Read("k")
		if (ae == nil) != (be == nil) {
			t.Fatalf("read %d: injectors diverged", i)
		}
		if a.Checksum("k") != b.Checksum("k") {
			t.Fatalf("checksum %d: injectors diverged", i)
		}
		ae, be = a.Write("k"), b.Write("k")
		if (ae == nil) != (be == nil) {
			t.Fatalf("write %d: injectors diverged", i)
		}
	}
	ar, aw, ac := a.Counts()
	br, bw, bc := b.Counts()
	if ar != br || aw != bw || ac != bc {
		t.Fatalf("counts diverged: %d/%d/%d vs %d/%d/%d", ar, aw, ac, br, bw, bc)
	}
	if ar == 0 || aw == 0 || ac == 0 {
		t.Fatalf("p=0.5 over 64 draws fired %d/%d/%d faults, want all > 0", ar, aw, ac)
	}
}

// TestDiskInjectorSentinelAndNil checks injected errors wrap the
// sentinel and that a nil injector is inert.
func TestDiskInjectorSentinelAndNil(t *testing.T) {
	d := NewDisk(DiskPlan{ReadErr: 1, WriteErr: 1, ChecksumErr: 1})
	if err := d.Read("k"); !errors.Is(err, ErrInjectedDisk) {
		t.Fatalf("Read error %v does not wrap ErrInjectedDisk", err)
	}
	if err := d.Write("k"); !errors.Is(err, ErrInjectedDisk) {
		t.Fatalf("Write error %v does not wrap ErrInjectedDisk", err)
	}
	if !d.Checksum("k") {
		t.Fatal("ChecksumErr=1 did not fire")
	}

	var nilInj *DiskInjector
	if err := nilInj.Read("k"); err != nil {
		t.Fatalf("nil injector read = %v", err)
	}
	if err := nilInj.Write("k"); err != nil {
		t.Fatalf("nil injector write = %v", err)
	}
	if nilInj.Checksum("k") {
		t.Fatal("nil injector checksum fired")
	}
	if r, w, c := nilInj.Counts(); r+w+c != 0 {
		t.Fatal("nil injector reported counts")
	}
}

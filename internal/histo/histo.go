// Package histo is a fixed-bucket latency histogram in the Prometheus
// cumulative-bucket exposition shape, shared by the promotion server
// and the cluster router.
//
// One type serves three roles:
//
//   - recording: Observe is a lock-free atomic add on the request path;
//   - exposition: WritePrometheus renders the classic
//     name_bucket{le="..."} / name_sum / name_count triple;
//   - consumption: ParsePrometheus reads that same triple back out of a
//     scraped /metrics body, which is how the router derives its
//     hedging delay from the p95 its replicas actually serve instead of
//     a hardcoded guess.
//
// Buckets are fixed at construction. Quantiles are estimated by linear
// interpolation inside the covering bucket — exact enough for "fire the
// hedge near p95", which only needs the right order of magnitude.
package histo

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// DefaultBuckets are the latency bucket upper bounds in seconds used by
// both rpserved and rprouter: 500µs to 10s, roughly 2-2.5× apart, dense
// where loopback serving actually lands. Sharing one layout means a
// scraped replica histogram and the router's own histogram are
// mergeable bucket-for-bucket.
func DefaultBuckets() []float64 {
	return []float64{
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Histogram is a concurrency-safe fixed-bucket histogram. The zero
// value is not usable; call New.
type Histogram struct {
	bounds []float64      // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64 // len(bounds)+1, per-bucket (cumulated only at render time)
	sumNS  atomic.Int64
	n      atomic.Int64
}

// New builds a histogram over the given ascending upper bounds in
// seconds. Nil or empty bounds fall back to DefaultBuckets.
func New(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets()
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
	}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s) // first bound >= s → its bucket
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// Snapshot returns a consistent-enough copy for rendering and quantile
// estimation. (Counts are read individually; a snapshot taken under
// load may be off by in-flight observations, which is the standard
// Prometheus exposition contract.)
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.SumSeconds = time.Duration(h.sumNS.Load()).Seconds()
	s.Count = h.n.Load()
	return s
}

// Snapshot is an immutable view of a histogram: per-bucket
// (non-cumulative) counts aligned with Bounds, plus the +Inf bucket at
// Counts[len(Bounds)].
type Snapshot struct {
	Bounds     []float64
	Counts     []int64
	SumSeconds float64
	Count      int64
}

// Quantile estimates the q-th latency quantile in seconds (q in
// [0, 1]) by linear interpolation within the covering bucket. An empty
// snapshot returns 0. Samples in the +Inf bucket are attributed to the
// last finite bound — a floor, never an invented ceiling.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := float64(0)
	for i, c := range s.Counts {
		if float64(c)+cum < target || c == 0 {
			cum += float64(c)
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: no upper bound to interpolate toward.
			return s.Bounds[len(s.Bounds)-1]
		}
		hi := s.Bounds[i]
		frac := (target - cum) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Merge adds other's samples into a copy of s. Both snapshots must use
// identical bounds; mismatched layouts return an error rather than a
// silently wrong histogram.
func (s Snapshot) Merge(other Snapshot) (Snapshot, error) {
	if other.Count == 0 {
		return s, nil
	}
	if s.Count == 0 {
		return other, nil
	}
	if len(s.Bounds) != len(other.Bounds) {
		return Snapshot{}, fmt.Errorf("histo: merge: %d vs %d buckets", len(s.Bounds), len(other.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != other.Bounds[i] {
			return Snapshot{}, fmt.Errorf("histo: merge: bound %d differs (%g vs %g)", i, s.Bounds[i], other.Bounds[i])
		}
	}
	out := Snapshot{
		Bounds:     append([]float64(nil), s.Bounds...),
		Counts:     append([]int64(nil), s.Counts...),
		SumSeconds: s.SumSeconds + other.SumSeconds,
		Count:      s.Count + other.Count,
	}
	for i, c := range other.Counts {
		out.Counts[i] += c
	}
	return out, nil
}

// WritePrometheus renders the snapshot as a Prometheus histogram named
// name. labels, when non-empty, is a preformatted label body without
// braces (`replica="a"`) merged into every series alongside le.
func (s Snapshot) WritePrometheus(w io.Writer, name, help, labels string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(b), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, s.SumSeconds, name, s.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, s.SumSeconds, name, labels, s.Count)
	}
}

// formatBound renders a bucket bound the way Prometheus clients
// conventionally do: shortest round-trip decimal.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// ParsePrometheus extracts the histogram series called name from a
// Prometheus text exposition body. Series are matched on the metric
// name alone; when the body carries several label sets for the name
// (one per replica, say), their buckets are summed — the caller gets
// the aggregate distribution. Returns an error when the name is absent
// or its bucket lines are malformed.
func ParsePrometheus(body []byte, name string) (Snapshot, error) {
	type acc struct {
		byBound map[float64]int64 // cumulative values per le
		inf     int64
		sum     float64
		count   int64
		seen    bool
	}
	a := acc{byBound: make(map[float64]int64)}

	bucketPrefix := name + "_bucket{"
	sumPrefix := name + "_sum"
	countPrefix := name + "_count"
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, bucketPrefix):
			le, val, err := parseBucketLine(line)
			if err != nil {
				return Snapshot{}, fmt.Errorf("histo: parse %s: %w", name, err)
			}
			a.seen = true
			if math.IsInf(le, +1) {
				a.inf += val
			} else {
				a.byBound[le] += val
			}
		case strings.HasPrefix(line, sumPrefix):
			v, err := trailingFloat(line)
			if err != nil {
				return Snapshot{}, fmt.Errorf("histo: parse %s_sum: %w", name, err)
			}
			a.sum += v
			a.seen = true
		case strings.HasPrefix(line, countPrefix):
			v, err := trailingFloat(line)
			if err != nil {
				return Snapshot{}, fmt.Errorf("histo: parse %s_count: %w", name, err)
			}
			a.count += int64(v)
			a.seen = true
		}
	}
	if !a.seen {
		return Snapshot{}, fmt.Errorf("histo: metric %q not found", name)
	}

	bounds := make([]float64, 0, len(a.byBound))
	for b := range a.byBound {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	s := Snapshot{
		Bounds:     bounds,
		Counts:     make([]int64, len(bounds)+1),
		SumSeconds: a.sum,
		Count:      a.count,
	}
	// De-cumulate: exposition buckets are cumulative, Snapshot stores
	// per-bucket counts.
	prev := int64(0)
	for i, b := range bounds {
		c := a.byBound[b]
		if c < prev {
			return Snapshot{}, fmt.Errorf("histo: metric %q buckets not cumulative at le=%g", name, b)
		}
		s.Counts[i] = c - prev
		prev = c
	}
	if a.inf < prev {
		return Snapshot{}, fmt.Errorf("histo: metric %q +Inf bucket below last finite bucket", name)
	}
	s.Counts[len(bounds)] = a.inf - prev
	return s, nil
}

// parseBucketLine pulls (le, value) out of one `name_bucket{...} v`
// exposition line.
func parseBucketLine(line string) (le float64, val int64, err error) {
	open := strings.IndexByte(line, '{')
	close := strings.IndexByte(line, '}')
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("malformed bucket line %q", line)
	}
	leStr := ""
	for _, kv := range strings.Split(line[open+1:close], ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || k != "le" {
			continue
		}
		leStr = strings.Trim(v, `"`)
	}
	if leStr == "" {
		return 0, 0, fmt.Errorf("bucket line %q has no le label", line)
	}
	if leStr == "+Inf" {
		le = math.Inf(+1)
	} else if le, err = strconv.ParseFloat(leStr, 64); err != nil {
		return 0, 0, fmt.Errorf("bucket bound %q: %w", leStr, err)
	}
	v, err := trailingFloat(line[close+1:])
	if err != nil {
		return 0, 0, err
	}
	return le, int64(v), nil
}

// trailingFloat parses the last whitespace-separated field of s as a
// float.
func trailingFloat(s string) (float64, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return 0, fmt.Errorf("no value field in %q", s)
	}
	return strconv.ParseFloat(fields[len(fields)-1], 64)
}

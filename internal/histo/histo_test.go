package histo

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObserveAndQuantile(t *testing.T) {
	h := New([]float64{0.001, 0.01, 0.1, 1})
	// 90 fast samples, 10 slow: p50 lands in the first bucket, p99 in
	// the 0.1–1 bucket.
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if p50 := s.Quantile(0.50); p50 <= 0 || p50 > 0.001 {
		t.Fatalf("p50 = %g, want in (0, 0.001]", p50)
	}
	if p99 := s.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Fatalf("p99 = %g, want in (0.1, 1]", p99)
	}
	wantSum := 90*0.0005 + 10*0.5
	if math.Abs(s.SumSeconds-wantSum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", s.SumSeconds, wantSum)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty Snapshot
	if q := empty.Quantile(0.95); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
	h := New(nil)
	// Everything beyond the last bound: quantile must floor at the last
	// finite bound, not invent a larger number.
	h.Observe(time.Minute)
	last := DefaultBuckets()[len(DefaultBuckets())-1]
	if q := h.Snapshot().Quantile(0.99); q != last {
		t.Fatalf("overflow quantile = %g, want last bound %g", q, last)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	h := New(nil)
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond) // 0–100ms spread
	}
	want := h.Snapshot()

	var buf bytes.Buffer
	want.WritePrometheus(&buf, "x_seconds", "test histogram", "")
	got, err := ParsePrometheus(buf.Bytes(), "x_seconds")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.Count != want.Count {
		t.Fatalf("count: got %d, want %d", got.Count, want.Count)
	}
	if math.Abs(got.SumSeconds-want.SumSeconds) > 1e-9 {
		t.Fatalf("sum: got %g, want %g", got.SumSeconds, want.SumSeconds)
	}
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: got %d, want %d", i, got.Counts[i], want.Counts[i])
		}
	}
	// Quantiles estimated from the parsed side must match the recorded
	// side exactly — same buckets, same interpolation.
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a, b := got.Quantile(q), want.Quantile(q); a != b {
			t.Fatalf("q%.2f: parsed %g, recorded %g", q, a, b)
		}
	}
}

func TestParseAggregatesLabelSets(t *testing.T) {
	// Two replicas' series under one name must sum into one aggregate
	// distribution — the router's scrape path.
	text := `
# HELP r_seconds request latency
# TYPE r_seconds histogram
r_seconds_bucket{replica="a",le="0.001"} 5
r_seconds_bucket{replica="a",le="+Inf"} 10
r_seconds_sum{replica="a"} 0.5
r_seconds_count{replica="a"} 10
r_seconds_bucket{replica="b",le="0.001"} 1
r_seconds_bucket{replica="b",le="+Inf"} 4
r_seconds_sum{replica="b"} 0.25
r_seconds_count{replica="b"} 4
`
	s, err := ParsePrometheus([]byte(text), "r_seconds")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s.Count != 14 {
		t.Fatalf("count = %d, want 14", s.Count)
	}
	if s.Counts[0] != 6 || s.Counts[1] != 8 {
		t.Fatalf("buckets = %v, want [6 8]", s.Counts)
	}
	if math.Abs(s.SumSeconds-0.75) > 1e-9 {
		t.Fatalf("sum = %g, want 0.75", s.SumSeconds)
	}
}

func TestParseMissingMetric(t *testing.T) {
	if _, err := ParsePrometheus([]byte("other_metric 1\n"), "r_seconds"); err == nil {
		t.Fatal("want error for missing metric")
	}
}

func TestMergeRejectsMismatchedBounds(t *testing.T) {
	a := New([]float64{0.1, 1})
	b := New([]float64{0.2, 1})
	a.Observe(time.Millisecond)
	b.Observe(time.Millisecond)
	if _, err := a.Snapshot().Merge(b.Snapshot()); err == nil {
		t.Fatal("want error merging mismatched bounds")
	}
	// Merging with an empty snapshot is always fine.
	if _, err := a.Snapshot().Merge(New([]float64{0.5}).Snapshot()); err != nil {
		t.Fatalf("merge with empty: %v", err)
	}
}

func TestConcurrentObserve(t *testing.T) {
	h := New(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestWritePrometheusLabels(t *testing.T) {
	h := New([]float64{0.001})
	h.Observe(time.Microsecond)
	var buf bytes.Buffer
	h.Snapshot().WritePrometheus(&buf, "y_seconds", "help", `replica="r0"`)
	out := buf.String()
	for _, want := range []string{
		`y_seconds_bucket{replica="r0",le="0.001"} 1`,
		`y_seconds_bucket{replica="r0",le="+Inf"} 1`,
		`y_seconds_count{replica="r0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// Package analysis memoizes per-function CFG analyses across pipeline
// stages. Each cached result is keyed on ir.Function.CFGVersion, the
// counter every CFG mutation point bumps (DESIGN.md §8): a hit means the
// graph has not changed shape since the analysis was computed, so the
// normalize→train→build→memopt→promote→verify chain computes dominators,
// frontiers, intervals, and reverse postorder once per CFG shape instead
// of once per stage.
//
// The cache is safe for concurrent use by the pipeline's worker pool.
// The map of per-function entries is guarded by one mutex; each entry
// has its own, so workers transforming different functions never
// serialize on each other's analysis builds.
package analysis

import (
	"fmt"
	"sync"

	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/liveness"
)

// Kind names one cached analysis, for instrumentation.
type Kind string

// The cached analysis kinds.
const (
	KindDom       Kind = "dom"
	KindDF        Kind = "df"
	KindIntervals Kind = "intervals"
	KindRPO       Kind = "rpo"
	// KindCode tracks compiled interpreter bytecode. Unlike the CFG
	// analyses, code also depends on instruction content, which can
	// change at a fixed CFG version (SSA construction, promotion
	// rewrites); the interpreter therefore revalidates entries with its
	// own fingerprint and may legitimately rebuild at an unchanged
	// version. Builds for this kind are once per (version, instruction
	// stream), not once per version.
	KindCode Kind = "code"
	// KindLiveness and KindPressure track the static liveness analysis
	// and its per-interval MaxLive summary. Like KindCode they depend on
	// instruction content, so entries are keyed on (CFG version,
	// liveness.Fingerprint) and builds are once per (version, stream).
	KindLiveness Kind = "liveness"
	KindPressure Kind = "pressure"
)

// Kinds lists every cached analysis kind, in a fixed order — the
// serving layer iterates this to export per-kind build counters.
func Kinds() []Kind {
	return []Kind{KindDom, KindDF, KindIntervals, KindRPO, KindCode, KindLiveness, KindPressure}
}

// Cache memoizes CFG analyses per function, keyed on the CFG version.
type Cache struct {
	// Paranoid makes every cache hit revalidate against a fresh rebuild
	// and panic on structural mismatch — the pipeline sets it at
	// CheckParanoid to catch missing version bumps.
	Paranoid bool

	mu      sync.Mutex
	entries map[*ir.Function]*entry
}

// entry is the cache line of one function. Each analysis slot remembers
// the CFG version it was built at; builds[kind] lists every version a
// fresh build happened at, so tests can assert at most one build per
// version per kind.
type entry struct {
	mu sync.Mutex

	domVersion uint64
	dom        *cfg.DomTree

	dfVersion uint64
	df        cfg.DomFrontiers
	dfValid   bool

	ivVersion uint64
	intervals *cfg.Forest

	rpoVersion uint64
	rpo        []*ir.Block

	// code holds compiled interpreter bytecode as an opaque value: the
	// interpreter owns the format and the validity check (CFG version
	// plus instruction fingerprint); the cache just stores, serves, and
	// instruments it.
	code      any
	codeValid bool

	// live and pressure are keyed on (CFG version, instruction
	// fingerprint), both recorded inside the values themselves.
	live     *liveness.Info
	pressure *liveness.Pressure

	builds map[Kind][]uint64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[*ir.Function]*entry)}
}

func (c *Cache) entryFor(f *ir.Function) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[f]
	if e == nil {
		e = &entry{builds: make(map[Kind][]uint64)}
		c.entries[f] = e
	}
	return e
}

// Dom returns the dominator tree of f, rebuilding only if the CFG
// version moved since the last build.
func (c *Cache) Dom(f *ir.Function) *cfg.DomTree {
	e := c.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	v := f.CFGVersion()
	if e.dom != nil && e.domVersion == v {
		if c.Paranoid {
			verifyDom(f, e.dom)
		}
		return e.dom
	}
	e.dom = cfg.BuildDomTree(f)
	e.domVersion = v
	e.builds[KindDom] = append(e.builds[KindDom], v)
	return e.dom
}

// DF returns the dominance frontiers of f, building the dominator tree
// as needed.
func (c *Cache) DF(f *ir.Function) cfg.DomFrontiers {
	dom := c.Dom(f)
	e := c.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	v := f.CFGVersion()
	if e.dfValid && e.dfVersion == v {
		if c.Paranoid {
			verifyDF(f, dom, e.df)
		}
		return e.df
	}
	e.df = cfg.BuildDomFrontiers(dom)
	e.dfValid = true
	e.dfVersion = v
	e.builds[KindDF] = append(e.builds[KindDF], v)
	return e.df
}

// Intervals returns the interval forest of f.
func (c *Cache) Intervals(f *ir.Function) *cfg.Forest {
	e := c.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	v := f.CFGVersion()
	if e.intervals != nil && e.ivVersion == v {
		if c.Paranoid {
			verifyIntervals(f, e.intervals)
		}
		return e.intervals
	}
	e.intervals = cfg.BuildIntervals(f)
	e.ivVersion = v
	e.builds[KindIntervals] = append(e.builds[KindIntervals], v)
	return e.intervals
}

// RPO returns the reachable blocks of f in reverse postorder.
func (c *Cache) RPO(f *ir.Function) []*ir.Block {
	e := c.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	v := f.CFGVersion()
	if e.rpo != nil && e.rpoVersion == v {
		return e.rpo
	}
	e.rpo = cfg.ReversePostorder(f)
	e.rpoVersion = v
	e.builds[KindRPO] = append(e.builds[KindRPO], v)
	return e.rpo
}

// PutIntervals seeds the interval slot with a forest the caller just
// built at the current CFG version (cfg.Normalize returns one), so the
// cache need not recompute it. A Preheader-annotated forest in
// particular is only produced by Normalize; later Intervals calls at
// the same version return it unchanged.
func (c *Cache) PutIntervals(f *ir.Function, fo *cfg.Forest) {
	e := c.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.intervals = fo
	e.ivVersion = f.CFGVersion()
}

// CompiledCode returns the cached interpreter bytecode for f, if any.
// The caller (interp.Run) validates the unit against the function's
// current CFG version and instruction fingerprint before executing it;
// the cache itself makes no freshness promise. Implements
// interp.CodeCache.
func (c *Cache) CompiledCode(f *ir.Function) (any, bool) {
	e := c.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.codeValid {
		return nil, false
	}
	return e.code, true
}

// PutCompiledCode stores freshly compiled interpreter bytecode for f
// and logs the build at the current CFG version. Implements
// interp.CodeCache.
func (c *Cache) PutCompiledCode(f *ir.Function, code any) {
	e := c.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.code = code
	e.codeValid = true
	e.builds[KindCode] = append(e.builds[KindCode], f.CFGVersion())
}

// Liveness returns the static liveness analysis of f, rebuilding when
// either the CFG version or the instruction-stream fingerprint moved
// since the last build — promotion rewrites loads and stores without
// touching the CFG, and liveness must see the rewrite.
func (c *Cache) Liveness(f *ir.Function) *liveness.Info {
	e := c.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	v := f.CFGVersion()
	fp := liveness.Fingerprint(f)
	if e.live != nil && e.live.Version == v && e.live.Fingerprint == fp {
		if c.Paranoid {
			verifyLiveness(f, e.live)
		}
		return e.live
	}
	e.live = liveness.Compute(f)
	e.builds[KindLiveness] = append(e.builds[KindLiveness], v)
	return e.live
}

// Pressure returns the per-interval MaxLive summary of f, derived from
// the cached liveness and interval forest and keyed the same way as
// Liveness.
func (c *Cache) Pressure(f *ir.Function) *liveness.Pressure {
	info := c.Liveness(f)
	forest := c.Intervals(f)
	e := c.entryFor(f)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pressure != nil && e.pressure.Version == info.Version && e.pressure.Fingerprint == info.Fingerprint {
		if c.Paranoid {
			verifyPressure(f, info, forest, e.pressure)
		}
		return e.pressure
	}
	e.pressure = liveness.ComputePressure(info, forest)
	e.builds[KindPressure] = append(e.builds[KindPressure], info.Version)
	return e.pressure
}

// Invalidate drops every cached analysis of f. The pipeline calls it
// when a function object is replaced wholesale (snapshot rollback), so
// a recycled pointer with a rewound version counter cannot alias a
// stale entry.
func (c *Cache) Invalidate(f *ir.Function) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, f)
}

// Builds reports, per analysis kind, the CFG versions at which a fresh
// build of f's analysis ran (in build order, duplicates included). The
// cache-coherence test asserts each version appears at most once per
// kind.
func (c *Cache) Builds(f *ir.Function) map[Kind][]uint64 {
	c.mu.Lock()
	e := c.entries[f]
	c.mu.Unlock()
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[Kind][]uint64, len(e.builds))
	for k, vs := range e.builds {
		out[k] = append([]uint64(nil), vs...)
	}
	return out
}

// TotalBuilds sums the per-function build counts for every kind — the
// serving layer aggregates these into its /metrics gauges.
func (c *Cache) TotalBuilds() map[Kind]int {
	c.mu.Lock()
	entries := make([]*entry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	out := make(map[Kind]int)
	for _, e := range entries {
		e.mu.Lock()
		for k, vs := range e.builds {
			out[k] += len(vs)
		}
		e.mu.Unlock()
	}
	return out
}

// Functions returns every function with a cache entry.
func (c *Cache) Functions() []*ir.Function {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := make([]*ir.Function, 0, len(c.entries))
	for f := range c.entries {
		fs = append(fs, f)
	}
	return fs
}

// verifyDom panics unless the cached tree matches a fresh rebuild.
func verifyDom(f *ir.Function, cached *cfg.DomTree) {
	fresh := cfg.BuildDomTree(f)
	if len(fresh.RPO()) != len(cached.RPO()) {
		panic(fmt.Sprintf("analysis: stale dom tree for %s: %d reachable blocks cached, %d fresh (missing CFG version bump?)", f.Name, len(cached.RPO()), len(fresh.RPO())))
	}
	for _, b := range fresh.RPO() {
		if cached.Idom(b) != fresh.Idom(b) {
			panic(fmt.Sprintf("analysis: stale dom tree for %s: idom(%v) cached %v, fresh %v (missing CFG version bump?)", f.Name, b, cached.Idom(b), fresh.Idom(b)))
		}
	}
}

// verifyDF panics unless the cached frontiers match a fresh rebuild.
func verifyDF(f *ir.Function, dom *cfg.DomTree, cached cfg.DomFrontiers) {
	fresh := cfg.BuildDomFrontiers(dom)
	for _, b := range dom.RPO() {
		cf, ff := cached.Of(b), fresh.Of(b)
		if len(cf) != len(ff) {
			panic(fmt.Sprintf("analysis: stale frontiers for %s at %v (missing CFG version bump?)", f.Name, b))
		}
		for i := range cf {
			if cf[i] != ff[i] {
				panic(fmt.Sprintf("analysis: stale frontiers for %s at %v (missing CFG version bump?)", f.Name, b))
			}
		}
	}
}

// verifyLiveness panics unless the cached liveness matches a fresh
// rebuild.
func verifyLiveness(f *ir.Function, cached *liveness.Info) {
	fresh := liveness.Compute(f)
	if !cached.Equal(fresh) {
		panic(fmt.Sprintf("analysis: stale liveness for %s: cached MaxLive %d, fresh %d (missing CFG version bump or fingerprint change?)", f.Name, cached.MaxLive, fresh.MaxLive))
	}
}

// verifyPressure panics unless the cached pressure summary matches one
// freshly derived from the given liveness and forest.
func verifyPressure(f *ir.Function, info *liveness.Info, forest *cfg.Forest, cached *liveness.Pressure) {
	fresh := liveness.ComputePressure(info, forest)
	if !cached.Equal(fresh) {
		panic(fmt.Sprintf("analysis: stale pressure summary for %s (missing CFG version bump or fingerprint change?)", f.Name))
	}
}

// verifyIntervals panics unless the cached forest has the same structure
// as a fresh rebuild: per-block innermost header and depth, and the same
// member sets. Preheader annotations are excluded — only Normalize sets
// them, so a fresh BuildIntervals cannot reproduce them.
func verifyIntervals(f *ir.Function, cached *cfg.Forest) {
	fresh := cfg.BuildIntervals(f)
	for _, b := range f.Blocks {
		ci, fi := cached.InnermostInterval(b), fresh.InnermostInterval(b)
		switch {
		case (ci == nil) != (fi == nil):
			panic(fmt.Sprintf("analysis: stale intervals for %s: innermost(%v) presence differs (missing CFG version bump?)", f.Name, b))
		case ci == nil:
		case ci.Depth != fi.Depth || ci.Header.ID != fi.Header.ID:
			panic(fmt.Sprintf("analysis: stale intervals for %s: innermost(%v) cached (hdr %v depth %d), fresh (hdr %v depth %d)", f.Name, b, ci.Header, ci.Depth, fi.Header, fi.Depth))
		}
	}
}

package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/pipeline"
	"repro/internal/ssa"
	"repro/internal/workload"
)

// prepSSA normalizes prog's functions and builds SSA form — the shape
// the liveness/pressure kinds are meant to analyze.
func prepSSA(t *testing.T, prog *ir.Program) {
	t.Helper()
	for _, f := range prog.Funcs {
		if _, err := cfg.Normalize(f); err != nil {
			t.Fatalf("Normalize(%s): %v", f.Name, err)
		}
		if _, err := ssa.Build(f); err != nil {
			t.Fatalf("ssa.Build(%s): %v", f.Name, err)
		}
	}
}

// TestLivenessCacheCoherence checks the content-keyed kinds: repeated
// access is a hit, the cached result equals a fresh compute, and an
// in-place instruction rewrite (no CFG version bump) forces exactly one
// rebuild at the same version.
func TestLivenessCacheCoherence(t *testing.T) {
	prog := compileCorpus(t, 1)[0]
	prepSSA(t, prog)
	c := analysis.New()
	for _, f := range prog.Funcs {
		for i := 0; i < 3; i++ {
			got := c.Liveness(f)
			if fresh := liveness.Compute(f); !got.Equal(fresh) {
				t.Fatalf("%s: cached liveness differs from fresh compute", f.Name)
			}
			pres := c.Pressure(f)
			if fresh := liveness.ComputePressure(c.Liveness(f), c.Intervals(f)); !pres.Equal(fresh) {
				t.Fatalf("%s: cached pressure differs from fresh compute", f.Name)
			}
		}
		builds := c.Builds(f)
		if n := len(builds[analysis.KindLiveness]); n != 1 {
			t.Errorf("%s: liveness built %d times for an unchanged function, want 1", f.Name, n)
		}
		if n := len(builds[analysis.KindPressure]); n != 1 {
			t.Errorf("%s: pressure built %d times for an unchanged function, want 1", f.Name, n)
		}
	}
}

// TestLivenessRebuildsOnFingerprintChange rewrites one instruction in
// place — the CFG version cannot notice — and checks the next access
// rebuilds rather than serving the stale stream's liveness.
func TestLivenessRebuildsOnFingerprintChange(t *testing.T) {
	prog := compileCorpus(t, 0)[0]
	prepSSA(t, prog)
	var target *ir.Function
	var victim *ir.Instr
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpAdd {
					target, victim = f, in
					break
				}
			}
			if victim != nil {
				break
			}
		}
		if victim != nil {
			break
		}
	}
	if victim == nil {
		t.Skip("no add instruction in first workload")
	}
	c := analysis.New()
	v := target.CFGVersion()
	c.Liveness(target)
	victim.Op = ir.OpSub
	if target.CFGVersion() != v {
		t.Fatal("opcode rewrite bumped the CFG version; test premise broken")
	}
	c.Liveness(target)
	c.Liveness(target) // stable again: must be a hit
	if n := len(c.Builds(target)[analysis.KindLiveness]); n != 2 {
		t.Fatalf("liveness built %d times across an in-place rewrite, want 2", n)
	}
}

// TestParanoidLivenessRevalidation corrupts a cached liveness result
// and checks the paranoid hit path panics instead of serving it.
func TestParanoidLivenessRevalidation(t *testing.T) {
	prog := compileCorpus(t, 0)[0]
	prepSSA(t, prog)
	f := prog.Funcs[0]
	c := analysis.New()
	c.Paranoid = true
	info := c.Liveness(f)
	// Corrupt the cached object the way a missed invalidation would
	// manifest: the stored result no longer matches the function.
	info.MaxLive++
	defer func() {
		if recover() == nil {
			t.Fatal("paranoid liveness hit did not panic on a corrupted cached result")
		}
	}()
	c.Liveness(f)
}

// TestPressureRunBuildsLiveness checks the end-to-end wiring: a
// pressure-capped pipeline run against a supplied cache records
// liveness builds, and TotalBuilds aggregates them (the /metrics
// export's data source).
func TestPressureRunBuildsLiveness(t *testing.T) {
	cache := analysis.New()
	w := workload.Suite()[0]
	if _, err := pipeline.Run(w.Src, pipeline.Options{
		PressureCap:     6,
		SkipMeasurement: true,
		AnalysisCache:   cache,
	}); err != nil {
		t.Fatalf("pipeline.Run: %v", err)
	}
	totals := cache.TotalBuilds()
	if totals[analysis.KindLiveness] == 0 {
		t.Error("pressure-capped run recorded no liveness builds")
	}
	if totals[analysis.KindDom] == 0 {
		t.Error("run recorded no dom builds")
	}
}

package analysis_test

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/pipeline"
	"repro/internal/source"
	"repro/internal/ssa"
	"repro/internal/workload"
)

// compileCorpus returns the suite workloads plus generated programs,
// compiled and alias-analyzed but not yet normalized.
func compileCorpus(t *testing.T, generated int) []*ir.Program {
	t.Helper()
	var progs []*ir.Program
	srcs := make([]string, 0, 8+generated)
	for _, w := range workload.Suite() {
		srcs = append(srcs, w.Src)
	}
	for i := 0; i < generated; i++ {
		srcs = append(srcs, workload.Generate(workload.DefaultGenConfig(workload.DeriveSeed(7, i))))
	}
	for _, src := range srcs {
		prog, err := source.Compile(src)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		if err := alias.Analyze(prog); err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		progs = append(progs, prog)
	}
	return progs
}

// requireEqualAnalyses asserts the cache's view of f matches fresh
// rebuilds structurally: dominator tree, frontiers, interval structure,
// and reverse postorder.
func requireEqualAnalyses(t *testing.T, c *analysis.Cache, f *ir.Function) {
	t.Helper()

	dom, freshDom := c.Dom(f), cfg.BuildDomTree(f)
	if len(dom.RPO()) != len(freshDom.RPO()) {
		t.Fatalf("%s: cached dom has %d reachable blocks, fresh %d", f.Name, len(dom.RPO()), len(freshDom.RPO()))
	}
	for _, b := range freshDom.RPO() {
		if dom.Idom(b) != freshDom.Idom(b) {
			t.Fatalf("%s: idom(%v) cached %v, fresh %v", f.Name, b, dom.Idom(b), freshDom.Idom(b))
		}
		if dom.Depth(b) != freshDom.Depth(b) {
			t.Fatalf("%s: depth(%v) cached %d, fresh %d", f.Name, b, dom.Depth(b), freshDom.Depth(b))
		}
	}

	df, freshDF := c.DF(f), cfg.BuildDomFrontiers(freshDom)
	for _, b := range freshDom.RPO() {
		cb, fb := df.Of(b), freshDF.Of(b)
		if len(cb) != len(fb) {
			t.Fatalf("%s: |DF(%v)| cached %d, fresh %d", f.Name, b, len(cb), len(fb))
		}
		for i := range cb {
			if cb[i] != fb[i] {
				t.Fatalf("%s: DF(%v)[%d] cached %v, fresh %v", f.Name, b, i, cb[i], fb[i])
			}
		}
	}

	fo, freshFo := c.Intervals(f), cfg.BuildIntervals(f)
	for _, b := range f.Blocks {
		ci, fi := fo.InnermostInterval(b), freshFo.InnermostInterval(b)
		if (ci == nil) != (fi == nil) {
			t.Fatalf("%s: innermost(%v) presence differs", f.Name, b)
		}
		if ci != nil && (ci.Depth != fi.Depth || ci.Header.ID != fi.Header.ID) {
			t.Fatalf("%s: innermost(%v) cached (hdr %v depth %d), fresh (hdr %v depth %d)",
				f.Name, b, ci.Header, ci.Depth, fi.Header, fi.Depth)
		}
	}

	rpo, freshRPO := c.RPO(f), cfg.ReversePostorder(f)
	if len(rpo) != len(freshRPO) {
		t.Fatalf("%s: RPO length cached %d, fresh %d", f.Name, len(rpo), len(freshRPO))
	}
	for i := range rpo {
		if rpo[i] != freshRPO[i] {
			t.Fatalf("%s: RPO[%d] cached %v, fresh %v", f.Name, i, rpo[i], freshRPO[i])
		}
	}
}

// TestCachedMatchesFresh checks, across the generated corpus, that every
// cached analysis is structurally identical to a fresh rebuild — before
// any CFG mutation, after Normalize, and after SSA construction (which
// removes unreachable blocks and may leave the version untouched or
// bumped; either way the cache must agree with fresh results).
func TestCachedMatchesFresh(t *testing.T) {
	for _, prog := range compileCorpus(t, 10) {
		c := analysis.New()
		for _, f := range prog.Funcs {
			requireEqualAnalyses(t, c, f)

			if _, err := cfg.Normalize(f); err != nil {
				t.Fatalf("Normalize(%s): %v", f.Name, err)
			}
			requireEqualAnalyses(t, c, f)

			dom := c.Dom(f)
			if err := ssa.BuildWith(f, dom, c.DF(f)); err != nil {
				t.Fatalf("ssa.BuildWith(%s): %v", f.Name, err)
			}
			requireEqualAnalyses(t, c, f)
		}
	}
}

// TestCacheHitsDoNotRebuild asserts repeated access at an unchanged CFG
// version serves hits: the per-kind build log gains no entries.
func TestCacheHitsDoNotRebuild(t *testing.T) {
	prog := compileCorpus(t, 1)[0]
	c := analysis.New()
	for _, f := range prog.Funcs {
		for i := 0; i < 3; i++ {
			c.Dom(f)
			c.DF(f)
			c.Intervals(f)
			c.RPO(f)
		}
		for kind, builds := range c.Builds(f) {
			if len(builds) != 1 {
				t.Errorf("%s: %s built %d times at version %v, want 1", f.Name, kind, len(builds), builds)
			}
		}
	}
}

// TestParanoidCatchesMissedBump checks the CheckParanoid safety net: a
// direct Preds/Succs edit without MarkCFGChanged must make the next
// paranoid cache hit panic.
func TestParanoidCatchesMissedBump(t *testing.T) {
	prog := compileCorpus(t, 0)[0]
	var target *ir.Function
	for _, f := range prog.Funcs {
		if len(f.Blocks) >= 3 && len(f.Blocks[0].Succs) == 1 {
			target = f
			break
		}
	}
	if target == nil {
		t.Skip("no suitable function in first workload")
	}
	c := analysis.New()
	c.Paranoid = true
	c.Dom(target)

	// Illegally rewire the entry's successor edge straight to a later
	// block, bypassing the ir mutators (and so the version bump).
	entry := target.Entry()
	old := entry.Succs[0]
	var repl *ir.Block
	for _, b := range old.Succs {
		if b != old {
			repl = b
			break
		}
	}
	if repl == nil {
		t.Skip("no replacement successor available")
	}
	entry.Succs[0] = repl
	repl.Preds = append(repl.Preds, entry)

	defer func() {
		if recover() == nil {
			t.Fatal("paranoid cache hit did not panic after unannounced CFG edit")
		}
	}()
	c.Dom(target)
}

// TestPipelineBuildsOncePerVersion runs the full pipeline over the suite
// workloads with an instrumented cache and asserts the cache-coherence
// goal of the cross-stage design: no analysis kind is computed more than
// once per CFG version per function.
func TestPipelineBuildsOncePerVersion(t *testing.T) {
	for _, w := range workload.Suite() {
		cache := analysis.New()
		_, err := pipeline.Run(w.Src, pipeline.Options{
			PreMemOpts:    true,
			Check:         pipeline.CheckBoundaries,
			AnalysisCache: cache,
		})
		if err != nil {
			t.Fatalf("%s: pipeline.Run: %v", w.Name, err)
		}
		for _, f := range cache.Functions() {
			for kind, builds := range cache.Builds(f) {
				seen := make(map[uint64]bool, len(builds))
				for _, v := range builds {
					if seen[v] {
						t.Errorf("%s/%s: %s built twice at CFG version %d (builds %v)",
							w.Name, f.Name, kind, v, builds)
						break
					}
					seen[v] = true
				}
			}
		}
	}
}

// Command rplint runs the repo's determinism lint (internal/lint) over
// the packages held to the no-wall-clock / no-global-rand contract and
// exits non-zero if any issue is found. `make lint` (part of `make ci`)
// is the canonical invocation.
//
// Usage:
//
//	rplint                     # lint lint.DefaultPackages under -root
//	rplint -root /path/to/repo
//	rplint internal/core       # lint specific package dirs instead
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	root := flag.String("root", ".", "module root the package paths are relative to")
	flag.Parse()

	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = lint.DefaultPackages
	}
	issues, err := lint.CheckPackages(*root, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rplint:", err)
		os.Exit(2)
	}
	for _, is := range issues {
		fmt.Println(is)
	}
	if len(issues) > 0 {
		fmt.Fprintf(os.Stderr, "rplint: %d issue(s)\n", len(issues))
		os.Exit(1)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/workload"
)

// pressureConfig configures -pressure-bench: the suite plus Generated
// corpus entries run under pressure-aware promotion at Cap, and the
// resulting table (Table 3 extended with the cap-search columns) is
// printed and optionally written as a versioned JSON record.
type pressureConfig struct {
	Cap       int
	Generated int
	Seed      int64
	Size      string
	Opts      report.Options
	JSONPath  string
}

// pressureRecord is the JSON shape written by -pressure-bench -json.
type pressureRecord struct {
	SchemaVersion int                  `json:"schema_version"`
	Cap           int                  `json:"cap"`
	Generated     int                  `json:"generated"`
	Seed          int64                `json:"seed"`
	Size          string               `json:"size"`
	Rows          []report.PressureRow `json:"rows"`
	// CapExceeded counts rows whose capped colors exceed the effective
	// cap. PressureTable errors out before producing such a row, so a
	// written record always says 0 — the field exists so downstream
	// tooling can assert the guarantee without knowing that.
	CapExceeded int `json:"cap_exceeded"`
}

// runPressureBench builds the corpus, runs the pressure table, prints
// it, and writes the JSON record when asked.
func runPressureBench(cfg pressureConfig) error {
	var extra []workload.Workload
	for i := 0; i < cfg.Generated; i++ {
		w, err := workload.SizedCorpusEntry(cfg.Seed, i, cfg.Size)
		if err != nil {
			return err
		}
		extra = append(extra, w)
	}

	rows, err := report.PressureTable(cfg.Opts, cfg.Cap, extra)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatPressureTable(rows, cfg.Cap))

	if cfg.JSONPath != "" {
		rec := pressureRecord{
			SchemaVersion: report.SchemaVersion,
			Cap:           cfg.Cap,
			Generated:     cfg.Generated,
			Seed:          cfg.Seed,
			Size:          cfg.Size,
			Rows:          rows,
		}
		if rec.Rows == nil {
			rec.Rows = []report.PressureRow{}
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.JSONPath)
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/alias"
	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/report"
	"repro/internal/source"
)

// interpBenchSrc is the call-heavy program from the interp package's
// microbenchmarks: many short activations dominated by frame setup,
// argument passing, and call/return dispatch — the costs the bytecode
// path attacks.
const interpBenchSrc = `
int depth;
int leaf(int a, int b) {
	int t[4];
	t[0] = a; t[1] = b; t[2] = a + b; t[3] = a - b;
	return t[0] + t[1] * t[2] - t[3];
}
int mid(int n) {
	int acc;
	int i;
	for (i = 0; i < 8; i++) {
		acc = acc + leaf(i, n);
	}
	return acc;
}
void main() {
	int i;
	int sum;
	for (i = 0; i < 2000; i++) {
		sum = sum + mid(i);
	}
	print(sum);
}`

// pathSample is one execution path's measured steady state.
type pathSample struct {
	NsPerRun     float64 `json:"ns_per_run"`
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"alloc_bytes_per_run"`
}

// interpBenchRecord is the JSON shape written by -interp-bench: the
// three execution paths on the same call-heavy program, plus the two
// ratios the optimization work is judged by.
type interpBenchRecord struct {
	SchemaVersion     int        `json:"schema_version"`
	Iters             int        `json:"iters"`
	Legacy            pathSample `json:"legacy"`
	Fast              pathSample `json:"fastpath"`
	Bytecode          pathSample `json:"bytecode"`
	SpeedupVsFastpath float64    `json:"speedup_vs_fastpath"`
	SpeedupVsLegacy   float64    `json:"speedup_vs_legacy"`
}

// measurePath runs the call-heavy program iters times under opts and
// returns the steady-state per-run cost. One untimed warmup run absorbs
// one-time costs (bytecode compilation lands in the shared code cache).
func measurePath(iters int, opts interp.Options) (pathSample, error) {
	prog, err := source.Compile(interpBenchSrc)
	if err != nil {
		return pathSample{}, err
	}
	if err := alias.Analyze(prog); err != nil {
		return pathSample{}, err
	}
	opts.CollectProfile = true
	if _, err := interp.Run(prog, opts); err != nil {
		return pathSample{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := interp.Run(prog, opts); err != nil {
			return pathSample{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return pathSample{
		NsPerRun:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerRun: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerRun:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}, nil
}

// runInterpBench measures the legacy, fast, and bytecode interpreter
// paths on the call-heavy program and writes the comparison record.
func runInterpBench(iters int, jsonPath string) error {
	legacy, err := measurePath(iters, interp.Options{Legacy: true})
	if err != nil {
		return err
	}
	fast, err := measurePath(iters, interp.Options{})
	if err != nil {
		return err
	}
	// The bytecode path shares one external code cache across runs, the
	// deployment shape: compilation is paid once, every run after that
	// is pure dispatch.
	bc, err := measurePath(iters, interp.Options{Bytecode: true, Code: analysis.New()})
	if err != nil {
		return err
	}

	rec := interpBenchRecord{
		SchemaVersion:     report.SchemaVersion,
		Iters:             iters,
		Legacy:            legacy,
		Fast:              fast,
		Bytecode:          bc,
		SpeedupVsFastpath: fast.NsPerRun / bc.NsPerRun,
		SpeedupVsLegacy:   legacy.NsPerRun / bc.NsPerRun,
	}
	fmt.Printf("interp-bench: call-heavy program, %d timed runs per path\n", iters)
	fmt.Printf("%-9s %12.0f ns/run %10.0f allocs/run %12.0f B/run\n", "legacy", legacy.NsPerRun, legacy.AllocsPerRun, legacy.BytesPerRun)
	fmt.Printf("%-9s %12.0f ns/run %10.0f allocs/run %12.0f B/run\n", "fastpath", fast.NsPerRun, fast.AllocsPerRun, fast.BytesPerRun)
	fmt.Printf("%-9s %12.0f ns/run %10.0f allocs/run %12.0f B/run\n", "bytecode", bc.NsPerRun, bc.AllocsPerRun, bc.BytesPerRun)
	fmt.Printf("bytecode speedup: %.2fx vs fastpath, %.2fx vs legacy\n", rec.SpeedupVsFastpath, rec.SpeedupVsLegacy)

	if jsonPath != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/oracle"
	"repro/internal/report"
)

// oracleConfig parameterizes one oracle sweep.
type oracleConfig struct {
	// Programs is how many seeded programs to check.
	Programs int
	// Seed and Size select the generated stream (shared -seed/-size
	// flags).
	Seed int64
	Size string
	// RoundTrip additionally checks print→reimport equivalence.
	RoundTrip bool
	// JSONPath, when non-empty, receives the machine-readable record.
	JSONPath string
}

// oracleRecord is the JSON shape of an oracle sweep: the configuration,
// what was executed, and every violated property with its shrunk
// counterexample. A clean nightly run is a one-line "mismatches": []
// diff against the previous one.
type oracleRecord struct {
	SchemaVersion int               `json:"schema_version"`
	Seed          int64             `json:"seed"`
	Programs      int               `json:"programs"`
	Size          string            `json:"size"`
	RoundTrip     bool              `json:"round_trip"`
	Runs          int               `json:"runs"`
	Degraded      int               `json:"degraded"`
	Skipped       int               `json:"skipped"`
	ElapsedMS     float64           `json:"elapsed_ms"`
	ProgramsPerS  float64           `json:"programs_per_sec"`
	Mismatches    []oracle.Mismatch `json:"mismatches"`
}

// runOracle sweeps the seeded program stream through the semantics
// oracle and reports every violated property. A non-empty mismatch set
// is an exit-code failure: the oracle is a correctness gate, not a
// benchmark.
func runOracle(cfg oracleConfig) error {
	start := time.Now()
	lastLine := 0
	rep, err := oracle.Run(oracle.Config{
		Seed:      cfg.Seed,
		Programs:  cfg.Programs,
		Size:      cfg.Size,
		RoundTrip: cfg.RoundTrip,
		Progress: func(done, total int) {
			// Coarse progress: one line per ~10%, so logs stay short.
			if pct := done * 10 / total; pct > lastLine {
				lastLine = pct
				fmt.Printf("oracle: %d/%d programs checked\n", done, total)
			}
		},
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("oracle: %d programs (seed %d, size %s, round-trip %v): %d interpreter runs, %d degraded, %d skipped, %d mismatches in %v\n",
		rep.Programs, rep.Seed, rep.Size, cfg.RoundTrip, rep.Runs, rep.Degraded,
		rep.Skipped, len(rep.Mismatches), elapsed.Round(time.Millisecond))
	for _, m := range rep.Mismatches {
		fmt.Printf("MISMATCH program %d (seed %d): %s: %s\nshrunk counterexample (%d lines, from %d):\n%s\n",
			m.Index, m.Seed, m.Property, m.Detail, m.ShrunkLines, m.OrigLines, m.Source)
	}

	if cfg.JSONPath != "" {
		rec := oracleRecord{
			SchemaVersion: report.SchemaVersion,
			Seed:          rep.Seed,
			Programs:      rep.Programs,
			Size:          rep.Size,
			RoundTrip:     cfg.RoundTrip,
			Runs:          rep.Runs,
			Degraded:      rep.Degraded,
			Skipped:       rep.Skipped,
			ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
			ProgramsPerS:  float64(rep.Programs) / elapsed.Seconds(),
			Mismatches:    rep.Mismatches,
		}
		if rec.Mismatches == nil {
			rec.Mismatches = []oracle.Mismatch{}
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.JSONPath)
	}

	if !rep.Ok() {
		return fmt.Errorf("oracle: %d of %d programs violated a property", len(rep.Mismatches), rep.Programs)
	}
	return nil
}

// Command rpbench regenerates the paper's evaluation tables over the
// SPECInt95-analogue workload suite, plus the ablation comparisons.
//
// Usage:
//
//	rpbench                 # all tables and ablations
//	rpbench -table 2        # just the dynamic counts table
//	rpbench -ablations      # just the ablations
//	rpbench -static-profile # promote with the static estimator instead
//
// Batch mode shards a stress corpus (the suite plus generated
// programs) across goroutines and reports throughput, per-stage wall
// time, and a machine-readable record for before/after comparison:
//
//	rpbench -batch 24 -j 8             # suite + 24 generated, 8 shards
//	rpbench -batch 24 -j 1 -json a.json && rpbench -batch 24 -j 8 -json b.json
//	rpbench -workers 4                 # per-program transform workers
//
// Pressure mode runs the suite (plus -pressure-gen generated programs)
// under pressure-aware promotion and reports the Table-3-style color
// counts against the no-cap baseline:
//
//	rpbench -pressure-bench -pressure-cap 8 -pressure-gen 8 -json BENCH_pressure.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/pipeline"
	"repro/internal/profiling"
	"repro/internal/report"
)

func main() {
	var (
		table      = flag.Int("table", 0, "table to regenerate: 1, 2, or 3 (0 = all)")
		ablations  = flag.Bool("ablations", false, "run only the ablation comparisons")
		static     = flag.Bool("static-profile", false, "use the static loop-depth profile estimator")
		paper      = flag.Bool("paper-formula", false, "use the paper's exact profit formula")
		check      = flag.String("check", "off", "pipeline self-checking level: off, boundaries, or paranoid")
		failFast   = flag.Bool("failfast", false, "abort on the first stage failure instead of degrading the function")
		workers    = flag.Int("workers", 1, "per-program pipeline workers (0 = GOMAXPROCS, 1 = sequential)")
		batch      = flag.Int("batch", -1, "batch mode: run the suite plus N generated stress programs (-1 = off, 0 = suite only)")
		seed       = flag.Int64("seed", 1, "base seed for the generated batch corpus")
		size       = flag.String("size", "medium", "batch mode: generated workload size: small, medium, or large")
		jobs       = flag.Int("j", 1, "batch mode: shard corpus entries across N goroutines")
		legacy     = flag.Bool("legacy", false, "batch mode: run the pre-optimization paths (no analysis cache, map-based interpreter) as the benchmark baseline")
		bytecode   = flag.Bool("bytecode", false, "batch mode: run training and measurement interpretation on the compiled bytecode path")
		irEvery    = flag.Int("ir-every", 0, "batch mode: replace every Nth generated entry with an imported real-IR program (0 = off)")
		oracleN    = flag.Int("oracle", 0, "run the semantics oracle over N seeded generated programs (uses -seed and -size), write -json, and exit")
		oracleRT   = flag.Bool("oracle-roundtrip", false, "oracle mode: also check print→reimport round-trip equivalence")
		interpN    = flag.Int("interp-bench", 0, "measure the three interpreter paths on the call-heavy program with N timed runs each, write -json, and exit")
		presBench  = flag.Bool("pressure-bench", false, "run the pressure-aware promotion table over the suite plus -pressure-gen programs, write -json, and exit")
		presCap    = flag.Int("pressure-cap", 8, "pressure mode: register-pressure color cap")
		presGen    = flag.Int("pressure-gen", 0, "pressure mode: generated stress programs to add to the suite (uses -seed and -size)")
		timings    = flag.Bool("timings", false, "batch mode: print aggregated per-stage wall times")
		jsonOut    = flag.String("json", "", "batch mode: write a machine-readable benchmark record to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fatal(err)
	}
	// Flushed both on the normal return path (deferred) and right before
	// fatal exits, which bypass defers; the once-guard keeps the two
	// paths from flushing twice.
	flushed := false
	finishProfiles := func() {
		if flushed {
			return
		}
		flushed = true
		stopCPU()
		if err := profiling.WriteHeap(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "rpbench:", err)
		}
	}
	defer finishProfiles()

	if *interpN > 0 {
		if err := runInterpBench(*interpN, *jsonOut); err != nil {
			finishProfiles()
			fatal(err)
		}
		return
	}

	if *oracleN > 0 {
		if err := runOracle(oracleConfig{
			Programs:  *oracleN,
			Seed:      *seed,
			Size:      *size,
			RoundTrip: *oracleRT,
			JSONPath:  *jsonOut,
		}); err != nil {
			finishProfiles()
			fatal(err)
		}
		return
	}

	checkLevel, err := pipeline.ParseCheckLevel(*check)
	if err != nil {
		fatal(err)
	}
	opts := report.Options{
		StaticProfile:      *static,
		PaperProfitFormula: *paper,
		Check:              checkLevel,
		FailFast:           *failFast,
		Workers:            *workers,
	}

	if *presBench {
		if err := runPressureBench(pressureConfig{
			Cap:       *presCap,
			Generated: *presGen,
			Seed:      *seed,
			Size:      *size,
			Opts:      opts,
			JSONPath:  *jsonOut,
		}); err != nil {
			finishProfiles()
			fatal(err)
		}
		return
	}

	if *batch >= 0 {
		if err := runBatch(batchConfig{
			Generated: *batch,
			IREvery:   *irEvery,
			Seed:      *seed,
			Size:      *size,
			Jobs:      *jobs,
			Workers:   *workers,
			Check:     checkLevel,
			Legacy:    *legacy,
			Bytecode:  *bytecode,
			Timings:   *timings,
			JSONPath:  *jsonOut,
		}); err != nil {
			finishProfiles()
			fatal(err)
		}
		return
	}

	if *ablations {
		runAblations()
		return
	}

	if *table == 0 || *table == 1 {
		rows, err := report.Table1(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.FormatTable1(rows))
		fmt.Println()
	}
	if *table == 0 || *table == 2 {
		rows, err := report.Table2(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.FormatTable2(rows))
		fmt.Println()
	}
	if *table == 0 || *table == 3 {
		rows, err := report.Table3(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.FormatTable3(rows))
		fmt.Println()
	}
	if *table == 0 {
		runAblations()
	}
}

func runAblations() {
	comparisons := []struct {
		a, b           report.Options
		labelA, labelB string
	}{
		{
			report.Options{Algorithm: pipeline.AlgSSA},
			report.Options{Algorithm: pipeline.AlgBaseline},
			"ssa", "loop-baseline",
		},
		{
			report.Options{},
			report.Options{StaticProfile: true},
			"measured-profile", "static-profile",
		},
		{
			report.Options{},
			report.Options{PaperProfitFormula: true},
			"safe-formula", "paper-formula",
		},
		{
			report.Options{},
			report.Options{WholeFunctionScope: true},
			"interval-scope", "whole-func-scope",
		},
		{
			report.Options{},
			report.Options{Algorithm: pipeline.AlgMemOpt},
			"promotion", "memopt-only",
		},
	}
	for _, c := range comparisons {
		rows, err := report.Ablation(c.a, c.b, c.labelA, c.labelB)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.FormatAblation(rows))
		fmt.Println()
	}
}

// fatal prints the error — stage failures as their structured one-line
// message, never a raw panic trace — and exits non-zero.
func fatal(err error) {
	var se *pipeline.StageError
	if errors.As(err, &se) {
		fmt.Fprintln(os.Stderr, "rpbench:", se.Error())
	} else {
		fmt.Fprintln(os.Stderr, "rpbench:", err)
	}
	os.Exit(1)
}

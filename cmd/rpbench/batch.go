package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/interp"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/workload"
)

// batchConfig parameterizes one batch (stress-corpus) run.
type batchConfig struct {
	// Generated is how many generated stress programs to append to the
	// eight suite workloads.
	Generated int
	// Seed is the base seed the corpus entries derive theirs from.
	Seed int64
	// Size scales the generated programs: small, medium (default), or
	// large (see workload.SizedGenConfig).
	Size string
	// IREvery, when positive, replaces every IREvery-th generated entry
	// with an imported real-IR program (workload.ImportedSuite), so the
	// batch exercises the import frontend alongside the native one.
	IREvery int
	// Jobs shards corpus entries across goroutines.
	Jobs int
	// Workers is the per-program pipeline worker count.
	Workers int
	// Check is the pipeline self-checking level.
	Check pipeline.CheckLevel
	// Legacy runs the pre-optimization paths — no cross-stage analysis
	// cache, map-based interpreter accounting — as the before side of
	// the hot-path comparison.
	Legacy bool
	// Bytecode runs training and measurement interpretation on the
	// compiled bytecode path (mutually exclusive with Legacy).
	Bytecode bool
	// Timings prints the aggregated per-stage wall time table.
	Timings bool
	// JSONPath, when non-empty, receives a machine-readable record of
	// the run for before/after comparisons.
	JSONPath string
}

// entryResult is the outcome of one corpus entry. Results are stored at
// the entry's index, so aggregation order is independent of which shard
// finished first.
type entryResult struct {
	Name     string
	Err      error
	Out      *pipeline.Outcome
	Wall     time.Duration
	Degraded []string
}

// batchRecord is the JSON shape written by -json: enough to compare a
// before/after pair of runs (wall clock, throughput, per-stage time)
// and to confirm both runs computed the same thing (improvement and
// degradation totals are worker-count-invariant). It carries the shared
// report.SchemaVersion and the shared report.StageMS rows, so batch
// records and the serving layer's BENCH_serve.json stay one schema.
type batchRecord struct {
	SchemaVersion  int              `json:"schema_version"`
	Entries        int              `json:"entries"`
	Generated      int              `json:"generated"`
	Seed           int64            `json:"seed"`
	Size           string           `json:"size"`
	Mix            map[string]int   `json:"mix"` // corpus entries by input language
	Jobs           int              `json:"jobs"`
	Workers        int              `json:"workers"`
	Check          string           `json:"check"`
	Legacy         bool             `json:"legacy"`
	Bytecode       bool             `json:"bytecode"`
	ElapsedMS      float64          `json:"elapsed_ms"`
	CPUMS          float64          `json:"cpu_ms"` // summed per-entry wall
	EntriesPerSec  float64          `json:"entries_per_sec"`
	Functions      int              `json:"functions"`
	NsPerFunction  float64          `json:"ns_per_function"` // cpu / functions
	AllocsPerFunc  float64          `json:"allocs_per_func"` // heap allocations / functions
	AllocBytesPerF float64          `json:"alloc_bytes_per_func"`
	Failures       int              `json:"failures"`
	DegradedFuncs  int              `json:"degraded_funcs"`
	MeanImprovePct float64          `json:"mean_improvement_pct"`
	Stages         []report.StageMS `json:"stages"`
}

// runBatch compiles and measures the suite plus a generated stress
// corpus, sharding entries across cfg.Jobs goroutines. Per-entry
// results land at fixed indexes and every summary walks them in entry
// order, so the output is deterministic for any -j.
func runBatch(cfg batchConfig) error {
	corpus := workload.Suite()
	if cfg.Generated > 0 {
		gen, err := workload.ReplayCorpusMix(cfg.Seed, cfg.Generated, cfg.Size, cfg.IREvery)
		if err != nil {
			return err
		}
		corpus = append(corpus, gen...)
	}
	mix := workload.MixComposition(corpus)

	popts := pipeline.Options{
		Check:   cfg.Check,
		Workers: cfg.Workers,
		// Generated programs terminate by construction, but bound the
		// interpreter anyway so a generator bug cannot hang the batch.
		Interp: interp.Options{MaxSteps: 50_000_000, Timeout: 2 * time.Minute},
		// Legacy mode measures the pre-optimization baseline: every
		// stage rebuilds its own analyses and the interpreter uses the
		// original map-based accounting.
		NoAnalysisCache: cfg.Legacy,
	}
	popts.Interp.Legacy = cfg.Legacy
	popts.Interp.Bytecode = cfg.Bytecode

	jobs := cfg.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(corpus) {
		jobs = len(corpus)
	}

	results := make([]entryResult, len(corpus))
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	indexes := make(chan int)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				w := corpus[i]
				eopts := popts
				eopts.Lang = w.Lang
				t0 := time.Now()
				out, err := pipeline.Run(w.Src, eopts)
				r := entryResult{Name: w.Name, Err: err, Out: out, Wall: time.Since(t0)}
				if out != nil {
					r.Degraded = out.DegradedFuncs()
				}
				results[i] = r
			}
		}()
	}
	for i := range corpus {
		indexes <- i
	}
	close(indexes)
	wg.Wait()
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	var (
		failures, degraded int
		funcs              int
		cpu                time.Duration
		improveSum         float64
		improveN           int
		outcomes           []*pipeline.Outcome
	)
	for _, r := range results {
		cpu += r.Wall
		if r.Err != nil {
			failures++
			fmt.Printf("FAIL %-10s %v\n", r.Name, r.Err)
			continue
		}
		degraded += len(r.Degraded)
		funcs += len(r.Out.Prog.Funcs)
		outcomes = append(outcomes, r.Out)
		if r.Out.Before != nil && r.Out.After != nil && r.Out.Before.DynMemOps() > 0 {
			before, after := r.Out.Before.DynMemOps(), r.Out.After.DynMemOps()
			improveSum += float64(before-after) / float64(before) * 100
			improveN++
		}
		for _, fn := range r.Degraded {
			fmt.Printf("DEGRADED %-10s %s\n", r.Name, fn)
		}
	}
	mean := 0.0
	if improveN > 0 {
		mean = improveSum / float64(improveN)
	}

	// Per-function cost: total per-entry wall time and whole-process heap
	// allocation, divided by functions processed. Comparing a -legacy run
	// against a default run at the same -j isolates what the analysis
	// cache and the interpreter fast path buy.
	allocs := float64(msAfter.Mallocs - msBefore.Mallocs)
	allocBytes := float64(msAfter.TotalAlloc - msBefore.TotalAlloc)
	nsPerFunc, allocsPerFunc, bytesPerFunc := 0.0, 0.0, 0.0
	if funcs > 0 {
		nsPerFunc = float64(cpu.Nanoseconds()) / float64(funcs)
		allocsPerFunc = allocs / float64(funcs)
		bytesPerFunc = allocBytes / float64(funcs)
	}

	mode := "default"
	switch {
	case cfg.Legacy:
		mode = "legacy"
	case cfg.Bytecode:
		mode = "bytecode"
	}
	fmt.Printf("batch: %d entries (%d generated, seed %d, size %s, mix mc=%d ll=%d), -j %d, -workers %d, check %s, mode %s\n",
		len(corpus), cfg.Generated, cfg.Seed, sizeName(cfg.Size), mix["mc"], mix["ll"],
		jobs, cfg.Workers, cfg.Check, mode)
	fmt.Printf("wall %v  cpu %v  %.2f entries/s  failures %d  degraded funcs %d\n",
		elapsed.Round(time.Millisecond), cpu.Round(time.Millisecond),
		float64(len(corpus))/elapsed.Seconds(), failures, degraded)
	fmt.Printf("per function: %.0f ns  %.0f allocs  %.0f B  (%d functions)\n",
		nsPerFunc, allocsPerFunc, bytesPerFunc, funcs)
	fmt.Printf("mean dynamic memory-op improvement: %.1f%%\n", mean)

	stageRows := report.SumStageTimings(outcomes...)
	if cfg.Timings {
		fmt.Println()
		fmt.Print(report.FormatStageTimings(stageRows))
	}

	if cfg.JSONPath != "" {
		rec := batchRecord{
			SchemaVersion:  report.SchemaVersion,
			Entries:        len(corpus),
			Generated:      cfg.Generated,
			Seed:           cfg.Seed,
			Size:           sizeName(cfg.Size),
			Mix:            mix,
			Jobs:           jobs,
			Workers:        cfg.Workers,
			Check:          cfg.Check.String(),
			Legacy:         cfg.Legacy,
			ElapsedMS:      float64(elapsed.Microseconds()) / 1000,
			CPUMS:          float64(cpu.Microseconds()) / 1000,
			EntriesPerSec:  float64(len(corpus)) / elapsed.Seconds(),
			Functions:      funcs,
			NsPerFunction:  nsPerFunc,
			AllocsPerFunc:  allocsPerFunc,
			AllocBytesPerF: bytesPerFunc,
			Failures:       failures,
			DegradedFuncs:  degraded,
			MeanImprovePct: mean,
		}
		rec.Stages = report.StageTimingsMS(stageRows)
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.JSONPath)
	}

	if failures > 0 {
		return fmt.Errorf("batch: %d of %d entries failed", failures, len(corpus))
	}
	return nil
}

// sizeName canonicalizes the empty size to its meaning.
func sizeName(s string) string {
	if s == "" {
		return "medium"
	}
	return s
}

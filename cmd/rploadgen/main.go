// Command rploadgen replays a deterministic request mix against a
// running rpserved instance and measures serving throughput, latency
// percentiles, and cache hit rate.
//
// The mix is fully derived from -seed: -unique generated programs (the
// same derived-seed corpus the batch harness uses) visited in a
// deterministic order of -n requests, so two runs against equivalent
// servers see identical traffic whatever -c concurrency is. Because the
// mix revisits programs, a correct server serves most requests from its
// content-addressed cache — the measured hit rate and the per-program
// outcome-identity check are part of the verdict, not just the timing.
//
// Usage:
//
//	rploadgen -addr 127.0.0.1:8080 -n 512 -c 8 -unique 8 -size small
//	rploadgen -addr $(cat rpserved.port) -n 64 -qps 100 -json BENCH_serve.json
//	rploadgen -addr $(cat rprouter.port) -profile hotkey -c 16
//	rploadgen -addr ... -profile spike -qps 300 -duration 60s   # soak
//
// Declarative traffic profiles (-profile, or a JSON file via
// -profile-file) bundle a request count, corpus size, Zipf mix skew
// (-zipf-s), a rate shape (-shape steady|ramp|spike|diurnal), and
// optional SLO ceilings (p99, error rate) that turn the run into a
// pass/fail experiment. Explicit flags override profile fields;
// -duration switches to soak mode, sized by the shape's average rate.
//
// A 429 (backpressure or rate limiting) is retried up to -retries times,
// honoring the server's Retry-After hint with client-side jitter, capped
// at -retry-max-wait per attempt; requests that exhaust the budget count
// as gave_up. With -outcomes the per-program outcome SHA-256 map is
// written to a file, so two runs against equivalent servers (or one
// server across a restart) can be diffed for byte identity.
//
// Exit status is non-zero when no request succeeded, any request drew a
// 5xx, two responses for the same program carried different outcomes,
// or fewer than -min-disk-hits responses came from the disk tier.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "rpserved address (host:port)")
		n        = flag.Int("n", 256, "total requests to send")
		conc     = flag.Int("c", 8, "concurrent client connections")
		qps      = flag.Float64("qps", 0, "target request rate (0 = as fast as possible)")
		seed     = flag.Int64("seed", 1, "base seed for the replay corpus and request mix")
		unique   = flag.Int("unique", 8, "distinct programs in the replay corpus")
		irEvery  = flag.Int("ir-every", 0, "replace every Nth corpus entry with an imported real-IR program (0 = off)")
		size     = flag.String("size", "small", "generated program size: small, medium, or large")
		check    = flag.String("check", "off", "per-request pipeline check level")
		workers  = flag.Int("workers", 0, "per-request transform worker count (0 = server default)")
		timeout  = flag.Duration("timeout", 60*time.Second, "client-side HTTP timeout per request")
		jsonPath = flag.String("json", "", "write a machine-readable BENCH_serve record to this file")

		retries      = flag.Int("retries", 3, "retry budget per request for 429 responses (0 = no retries)")
		retryMaxWait = flag.Duration("retry-max-wait", 5*time.Second, "cap on a single Retry-After backoff")
		outcomesPath = flag.String("outcomes", "", "write the per-program outcome SHA-256 map to this file")
		minDiskHits  = flag.Int("min-disk-hits", 0, "fail unless at least this many responses came from the disk tier")

		profileName  = flag.String("profile", "", "builtin traffic profile: steady, ramp, spike, diurnal, or hotkey")
		profileFile  = flag.String("profile-file", "", "JSON traffic profile file (overrides -profile)")
		shape        = flag.String("shape", "", "rate curve when pacing: steady, ramp, spike, or diurnal")
		zipfS        = flag.Float64("zipf-s", 0, "Zipf skew for the request mix (0 = uniform)")
		baseQPS      = flag.Float64("base-qps", 0, "off-peak rate for shaped pacing (0 = qps/4)")
		duration     = flag.Duration("duration", 0, "soak mode: run this long at the shape's average rate instead of -n requests")
		minCollapsed = flag.Int("min-collapsed", 0, "fail unless at least this many responses were collapsed singleflight waits")
		clientID     = flag.String("client-id", "", "X-Client-ID header value (tenant identity at the router)")
		note         = flag.String("note", "", "free-form annotation recorded in the JSON record")
	)
	flag.Parse()

	// The effective profile: an explicit -profile/-profile-file supplies
	// defaults; flags the caller set on the command line override it.
	// Without a profile the flags alone describe an ad-hoc one.
	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	prof := workload.Profile{
		Name: "adhoc", Requests: *n, Unique: *unique, Size: *size,
		Shape: *shape, QPS: *qps, BaseQPS: *baseQPS, ZipfS: *zipfS,
		DurationS: duration.Seconds(),
	}
	if *profileName != "" || *profileFile != "" {
		var err error
		if *profileFile != "" {
			prof, err = workload.LoadProfile(*profileFile)
		} else {
			prof, err = workload.LookupProfile(*profileName)
		}
		if err != nil {
			fatal(err)
		}
		if setFlags["n"] {
			prof.Requests = *n
		}
		if setFlags["unique"] {
			prof.Unique = *unique
		}
		if setFlags["size"] {
			prof.Size = *size
		}
		if setFlags["shape"] {
			prof.Shape = *shape
		}
		if setFlags["qps"] {
			prof.QPS = *qps
		}
		if setFlags["base-qps"] {
			prof.BaseQPS = *baseQPS
		}
		if setFlags["zipf-s"] {
			prof.ZipfS = *zipfS
		}
		if setFlags["duration"] {
			prof.DurationS = duration.Seconds()
		}
	}
	if err := prof.Validate(); err != nil {
		fatal(err)
	}
	*n = prof.EffectiveRequests()
	*unique = prof.Unique
	*size = prof.Size
	if *n < 1 || *conc < 1 {
		fatal(fmt.Errorf("need -n >= 1 and -c >= 1"))
	}
	corpus, err := workload.ReplayCorpusMix(*seed, *unique, *size, *irEvery)
	if err != nil {
		fatal(err)
	}
	langMix := workload.MixComposition(corpus)
	bodies := make([][]byte, len(corpus))
	for i, w := range corpus {
		body, err := json.Marshal(server.PromoteRequest{
			Source: w.Src,
			Options: server.RequestOptions{
				Lang:    w.Lang,
				Check:   *check,
				Workers: *workers,
			},
		})
		if err != nil {
			fatal(err)
		}
		bodies[i] = body
	}
	mix := prof.Mix(*seed, *n)
	url := "http://" + strings.TrimPrefix(*addr, "http://") + "/v1/promote"
	client := &http.Client{Timeout: *timeout}

	type result struct {
		program   int
		status    int
		cache     string
		latency   time.Duration
		outcome   []byte
		transport error
		retries   int  // 429 retry attempts consumed
		gaveUp    bool // still 429 after exhausting the retry budget
	}
	results := make([]result, *n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *conc; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Per-worker rng for backoff jitter: reproducible per seed,
			// no lock contention across workers.
			rng := rand.New(rand.NewSource(*seed + int64(worker)))
			for i := range jobs {
				r := result{program: mix[i]}
				for attempt := 0; ; attempt++ {
					req, rerr := http.NewRequest(http.MethodPost, url, bytes.NewReader(bodies[r.program]))
					if rerr != nil {
						r.transport = rerr
						break
					}
					req.Header.Set("Content-Type", "application/json")
					if *clientID != "" {
						req.Header.Set("X-Client-ID", *clientID)
					}
					t0 := time.Now()
					resp, err := client.Do(req)
					r.latency = time.Since(t0)
					if err != nil {
						r.transport = err
						break
					}
					body, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					r.status = resp.StatusCode
					if rerr != nil {
						r.transport = rerr
						break
					}
					if resp.StatusCode == http.StatusTooManyRequests && attempt < *retries {
						// Honor the server's hint, jittered so retried
						// clients don't re-collide, bounded so a hostile
						// hint can't stall the run.
						wait := retryAfter(resp.Header.Get("Retry-After"))
						wait += time.Duration(rng.Int63n(int64(250 * time.Millisecond)))
						if wait > *retryMaxWait {
							wait = *retryMaxWait
						}
						time.Sleep(wait)
						r.retries++
						continue
					}
					if resp.StatusCode == http.StatusTooManyRequests && *retries > 0 {
						r.gaveUp = true
					}
					if resp.StatusCode == http.StatusOK {
						var pr server.PromoteResponse
						if uerr := json.Unmarshal(body, &pr); uerr != nil {
							r.transport = uerr
						} else {
							r.cache = pr.Serving.Cache
							r.outcome = pr.Outcome
						}
					}
					break
				}
				results[i] = r
			}
		}(c)
	}
	// Dispatcher-side pacing: request i is released at an absolute
	// schedule accumulated from the profile's rate curve, so ramps,
	// spikes, and diurnal swings come out as wall-clock rate changes
	// while per-request program assignment stays deterministic (request
	// i always carries program mix[i]). Unpaced profiles release as
	// fast as the workers drain.
	next := time.Now()
	for i := 0; i < *n; i++ {
		frac := 0.0
		if *n > 1 {
			frac = float64(i) / float64(*n-1)
		}
		if rate := prof.RateAt(frac); rate > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(time.Duration(float64(time.Second) / rate))
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	var (
		ok, rejected, clientErrs, serverErrs, timeouts, transportErrs int
		hits, diskHits, collapsed, misses, mismatches                 int
		totalRetries, gaveUp                                          int
		latencies                                                     []time.Duration
		canonical                                                     = make(map[int][]byte, *unique)
	)
	for i, r := range results {
		totalRetries += r.retries
		if r.gaveUp {
			gaveUp++
		}
		switch {
		case r.transport != nil:
			transportErrs++
			fmt.Printf("request %d (program %d): %v\n", i, r.program, r.transport)
		case r.status == http.StatusOK:
			ok++
			latencies = append(latencies, r.latency)
			switch r.cache {
			case "hit":
				hits++
			case "disk":
				diskHits++
			case "collapsed":
				collapsed++
			case "miss":
				misses++
			}
			if want, seen := canonical[r.program]; seen {
				if !bytes.Equal(want, r.outcome) {
					mismatches++
					fmt.Printf("request %d: program %d outcome diverged from earlier response\n", i, r.program)
				}
			} else {
				canonical[r.program] = r.outcome
			}
		case r.status == http.StatusTooManyRequests:
			rejected++
		case r.status == http.StatusRequestTimeout:
			timeouts++
		case r.status >= 500:
			serverErrs++
			fmt.Printf("request %d (program %d): HTTP %d\n", i, r.program, r.status)
		default:
			clientErrs++
			fmt.Printf("request %d (program %d): HTTP %d\n", i, r.program, r.status)
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	var mean time.Duration
	for _, l := range latencies {
		mean += l
	}
	if len(latencies) > 0 {
		mean /= time.Duration(len(latencies))
	}
	throughput := float64(ok) / elapsed.Seconds()
	hitRate := 0.0
	if ok > 0 {
		// Anything not recomputed from scratch counts as served from
		// cache: memory hit, disk hit, or a collapsed singleflight wait.
		hitRate = float64(hits+diskHits+collapsed) / float64(ok)
	}
	// Error rate for the SLO: everything the client could not turn into
	// a served response — 5xx, transport failures, timeouts, and 429s
	// that exhausted the retry budget. Plain 429s that retried into a
	// 200 are backpressure working, not errors.
	errorRate := float64(serverErrs+transportErrs+timeouts+gaveUp+clientErrs) / float64(*n)
	sloOK := true
	var sloViolations []string
	if prof.SLO.P99MS > 0 && ms(pct(0.99)) > prof.SLO.P99MS {
		sloOK = false
		sloViolations = append(sloViolations,
			fmt.Sprintf("p99 %.1fms > ceiling %.1fms", ms(pct(0.99)), prof.SLO.P99MS))
	}
	if prof.SLO.MaxErrorRate > 0 && errorRate > prof.SLO.MaxErrorRate {
		sloOK = false
		sloViolations = append(sloViolations,
			fmt.Sprintf("error rate %.4f > ceiling %.4f", errorRate, prof.SLO.MaxErrorRate))
	}

	fmt.Printf("rploadgen: %d requests (%d programs, seed %d, size %s), -c %d, profile %s", *n, *unique, *seed, *size, *conc, prof.Name)
	if prof.Shape != "" && prof.Shape != "steady" {
		fmt.Printf(", shape %s", prof.Shape)
	}
	if prof.ZipfS > 0 {
		fmt.Printf(", zipf %.2f", prof.ZipfS)
	}
	if prof.QPS > 0 {
		fmt.Printf(", peak %.0f qps", prof.QPS)
	}
	fmt.Println()
	fmt.Printf("elapsed %v  throughput %.1f req/s  ok %d  rejected %d  timeouts %d  client-err %d  server-err %d  transport-err %d\n",
		elapsed.Round(time.Millisecond), throughput, ok, rejected, timeouts, clientErrs, serverErrs, transportErrs)
	fmt.Printf("retries %d  gave-up %d\n", totalRetries, gaveUp)
	fmt.Printf("latency p50 %v  p95 %v  p99 %v  mean %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), mean.Round(time.Microsecond))
	fmt.Printf("cache: %d memory, %d disk, %d collapsed, %d misses (hit rate %.1f%%)  outcome mismatches: %d\n",
		hits, diskHits, collapsed, misses, hitRate*100, mismatches)

	if len(sloViolations) > 0 {
		fmt.Printf("SLO violated: %s\n", strings.Join(sloViolations, "; "))
	}

	if *jsonPath != "" {
		rec := serveRecord{
			SchemaVersion:     report.SchemaVersion,
			Addr:              *addr,
			Requests:          *n,
			Concurrency:       *conc,
			TargetQPS:         prof.QPS,
			Unique:            *unique,
			Seed:              *seed,
			Size:              *size,
			Mix:               langMix,
			Check:             *check,
			Profile:           prof.Name,
			Shape:             prof.Shape,
			ZipfS:             prof.ZipfS,
			BaseQPS:           prof.BaseQPS,
			DurationS:         prof.DurationS,
			ErrorRate:         errorRate,
			SLOOK:             sloOK,
			Note:              *note,
			ElapsedMS:         float64(elapsed.Microseconds()) / 1000,
			ThroughputRPS:     throughput,
			P50MS:             ms(pct(0.50)),
			P95MS:             ms(pct(0.95)),
			P99MS:             ms(pct(0.99)),
			MeanMS:            ms(mean),
			OK:                ok,
			Rejected:          rejected,
			Retries:           totalRetries,
			GaveUp:            gaveUp,
			Timeouts:          timeouts,
			ClientErrors:      clientErrs,
			ServerErrors:      serverErrs,
			TransportErrors:   transportErrs,
			CacheHits:         hits,
			DiskHits:          diskHits,
			Collapsed:         collapsed,
			CacheMisses:       misses,
			CacheHitRate:      hitRate,
			OutcomeMismatches: mismatches,
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if *outcomesPath != "" {
		// One SHA-256 per program, keyed by program index. Two runs
		// against equivalent servers must produce identical files —
		// that's the chaos harness's byte-identity check.
		fps := make(map[string]string, len(canonical))
		for prog, outcome := range canonical {
			sum := sha256.Sum256(outcome)
			fps[strconv.Itoa(prog)] = hex.EncodeToString(sum[:])
		}
		data, err := json.MarshalIndent(fps, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outcomesPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *outcomesPath)
	}

	if ok == 0 {
		fatal(fmt.Errorf("no request succeeded"))
	}
	if serverErrs > 0 || mismatches > 0 || transportErrs > 0 {
		fatal(fmt.Errorf("%d server errors, %d outcome mismatches, %d transport errors",
			serverErrs, mismatches, transportErrs))
	}
	if diskHits < *minDiskHits {
		fatal(fmt.Errorf("only %d disk-tier hits, need %d (cold tier did not survive)", diskHits, *minDiskHits))
	}
	if collapsed < *minCollapsed {
		fatal(fmt.Errorf("only %d collapsed singleflight waits, need %d (concurrent identical misses did not collapse)", collapsed, *minCollapsed))
	}
	if !sloOK {
		fatal(fmt.Errorf("SLO violated: %s", strings.Join(sloViolations, "; ")))
	}
}

// retryAfter parses a Retry-After header in whole seconds; a missing or
// malformed header falls back to a short fixed delay.
func retryAfter(h string) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 100 * time.Millisecond
}

// serveRecord is the machine-readable BENCH_serve.json shape, stamped
// with the shared report.SchemaVersion like every other BENCH record.
type serveRecord struct {
	SchemaVersion     int            `json:"schema_version"`
	Addr              string         `json:"addr"`
	Requests          int            `json:"requests"`
	Concurrency       int            `json:"concurrency"`
	TargetQPS         float64        `json:"target_qps"`
	Unique            int            `json:"unique_programs"`
	Seed              int64          `json:"seed"`
	Size              string         `json:"size"`
	Mix               map[string]int `json:"mix"` // corpus entries by input language
	Check             string         `json:"check"`
	Profile           string         `json:"profile,omitempty"`
	Shape             string         `json:"shape,omitempty"`
	ZipfS             float64        `json:"zipf_s,omitempty"`
	BaseQPS           float64        `json:"base_qps,omitempty"`
	DurationS         float64        `json:"duration_s,omitempty"`
	ErrorRate         float64        `json:"error_rate"`
	SLOOK             bool           `json:"slo_ok"`
	Note              string         `json:"note,omitempty"`
	ElapsedMS         float64        `json:"elapsed_ms"`
	ThroughputRPS     float64        `json:"throughput_rps"`
	P50MS             float64        `json:"p50_ms"`
	P95MS             float64        `json:"p95_ms"`
	P99MS             float64        `json:"p99_ms"`
	MeanMS            float64        `json:"mean_ms"`
	OK                int            `json:"ok"`
	Rejected          int            `json:"rejected"`
	Retries           int            `json:"retries"`
	GaveUp            int            `json:"gave_up"`
	Timeouts          int            `json:"timeouts"`
	ClientErrors      int            `json:"client_errors"`
	ServerErrors      int            `json:"server_errors"`
	TransportErrors   int            `json:"transport_errors"`
	CacheHits         int            `json:"cache_hits"`
	DiskHits          int            `json:"disk_hits"`
	Collapsed         int            `json:"collapsed"`
	CacheMisses       int            `json:"cache_misses"`
	CacheHitRate      float64        `json:"cache_hit_rate"`
	OutcomeMismatches int            `json:"outcome_mismatches"`
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rploadgen:", err)
	os.Exit(1)
}

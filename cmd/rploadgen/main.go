// Command rploadgen replays a deterministic request mix against a
// running rpserved instance and measures serving throughput, latency
// percentiles, and cache hit rate.
//
// The mix is fully derived from -seed: -unique generated programs (the
// same derived-seed corpus the batch harness uses) visited in a
// deterministic order of -n requests, so two runs against equivalent
// servers see identical traffic whatever -c concurrency is. Because the
// mix revisits programs, a correct server serves most requests from its
// content-addressed cache — the measured hit rate and the per-program
// outcome-identity check are part of the verdict, not just the timing.
//
// Usage:
//
//	rploadgen -addr 127.0.0.1:8080 -n 512 -c 8 -unique 8 -size small
//	rploadgen -addr $(cat rpserved.port) -n 64 -qps 100 -json BENCH_serve.json
//
// A 429 (backpressure or rate limiting) is retried up to -retries times,
// honoring the server's Retry-After hint with client-side jitter, capped
// at -retry-max-wait per attempt; requests that exhaust the budget count
// as gave_up. With -outcomes the per-program outcome SHA-256 map is
// written to a file, so two runs against equivalent servers (or one
// server across a restart) can be diffed for byte identity.
//
// Exit status is non-zero when no request succeeded, any request drew a
// 5xx, two responses for the same program carried different outcomes,
// or fewer than -min-disk-hits responses came from the disk tier.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "rpserved address (host:port)")
		n        = flag.Int("n", 256, "total requests to send")
		conc     = flag.Int("c", 8, "concurrent client connections")
		qps      = flag.Float64("qps", 0, "target request rate (0 = as fast as possible)")
		seed     = flag.Int64("seed", 1, "base seed for the replay corpus and request mix")
		unique   = flag.Int("unique", 8, "distinct programs in the replay corpus")
		size     = flag.String("size", "small", "generated program size: small, medium, or large")
		check    = flag.String("check", "off", "per-request pipeline check level")
		workers  = flag.Int("workers", 0, "per-request transform worker count (0 = server default)")
		timeout  = flag.Duration("timeout", 60*time.Second, "client-side HTTP timeout per request")
		jsonPath = flag.String("json", "", "write a machine-readable BENCH_serve record to this file")

		retries      = flag.Int("retries", 3, "retry budget per request for 429 responses (0 = no retries)")
		retryMaxWait = flag.Duration("retry-max-wait", 5*time.Second, "cap on a single Retry-After backoff")
		outcomesPath = flag.String("outcomes", "", "write the per-program outcome SHA-256 map to this file")
		minDiskHits  = flag.Int("min-disk-hits", 0, "fail unless at least this many responses came from the disk tier")
	)
	flag.Parse()

	if *n < 1 || *conc < 1 {
		fatal(fmt.Errorf("need -n >= 1 and -c >= 1"))
	}
	corpus, err := workload.ReplayCorpus(*seed, *unique, *size)
	if err != nil {
		fatal(err)
	}
	bodies := make([][]byte, len(corpus))
	for i, w := range corpus {
		body, err := json.Marshal(server.PromoteRequest{
			Source: w.Src,
			Options: server.RequestOptions{
				Check:   *check,
				Workers: *workers,
			},
		})
		if err != nil {
			fatal(err)
		}
		bodies[i] = body
	}
	mix := workload.MixIndexes(*seed, *n, *unique)
	url := "http://" + strings.TrimPrefix(*addr, "http://") + "/v1/promote"
	client := &http.Client{Timeout: *timeout}

	// Optional QPS pacing: one shared ticker feeds all clients, so the
	// aggregate rate is bounded while per-request assignment stays
	// deterministic (request i always carries program mix[i]).
	var pace <-chan time.Time
	if *qps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *qps))
		defer t.Stop()
		pace = t.C
	}

	type result struct {
		program   int
		status    int
		cache     string
		latency   time.Duration
		outcome   []byte
		transport error
		retries   int  // 429 retry attempts consumed
		gaveUp    bool // still 429 after exhausting the retry budget
	}
	results := make([]result, *n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *conc; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Per-worker rng for backoff jitter: reproducible per seed,
			// no lock contention across workers.
			rng := rand.New(rand.NewSource(*seed + int64(worker)))
			for i := range jobs {
				if pace != nil {
					<-pace
				}
				r := result{program: mix[i]}
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[r.program]))
					r.latency = time.Since(t0)
					if err != nil {
						r.transport = err
						break
					}
					body, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					r.status = resp.StatusCode
					if rerr != nil {
						r.transport = rerr
						break
					}
					if resp.StatusCode == http.StatusTooManyRequests && attempt < *retries {
						// Honor the server's hint, jittered so retried
						// clients don't re-collide, bounded so a hostile
						// hint can't stall the run.
						wait := retryAfter(resp.Header.Get("Retry-After"))
						wait += time.Duration(rng.Int63n(int64(250 * time.Millisecond)))
						if wait > *retryMaxWait {
							wait = *retryMaxWait
						}
						time.Sleep(wait)
						r.retries++
						continue
					}
					if resp.StatusCode == http.StatusTooManyRequests && *retries > 0 {
						r.gaveUp = true
					}
					if resp.StatusCode == http.StatusOK {
						var pr server.PromoteResponse
						if uerr := json.Unmarshal(body, &pr); uerr != nil {
							r.transport = uerr
						} else {
							r.cache = pr.Serving.Cache
							r.outcome = pr.Outcome
						}
					}
					break
				}
				results[i] = r
			}
		}(c)
	}
	for i := 0; i < *n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	var (
		ok, rejected, clientErrs, serverErrs, timeouts, transportErrs int
		hits, diskHits, collapsed, misses, mismatches                 int
		totalRetries, gaveUp                                          int
		latencies                                                     []time.Duration
		canonical                                                     = make(map[int][]byte, *unique)
	)
	for i, r := range results {
		totalRetries += r.retries
		if r.gaveUp {
			gaveUp++
		}
		switch {
		case r.transport != nil:
			transportErrs++
			fmt.Printf("request %d (program %d): %v\n", i, r.program, r.transport)
		case r.status == http.StatusOK:
			ok++
			latencies = append(latencies, r.latency)
			switch r.cache {
			case "hit":
				hits++
			case "disk":
				diskHits++
			case "collapsed":
				collapsed++
			case "miss":
				misses++
			}
			if want, seen := canonical[r.program]; seen {
				if !bytes.Equal(want, r.outcome) {
					mismatches++
					fmt.Printf("request %d: program %d outcome diverged from earlier response\n", i, r.program)
				}
			} else {
				canonical[r.program] = r.outcome
			}
		case r.status == http.StatusTooManyRequests:
			rejected++
		case r.status == http.StatusRequestTimeout:
			timeouts++
		case r.status >= 500:
			serverErrs++
			fmt.Printf("request %d (program %d): HTTP %d\n", i, r.program, r.status)
		default:
			clientErrs++
			fmt.Printf("request %d (program %d): HTTP %d\n", i, r.program, r.status)
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	var mean time.Duration
	for _, l := range latencies {
		mean += l
	}
	if len(latencies) > 0 {
		mean /= time.Duration(len(latencies))
	}
	throughput := float64(ok) / elapsed.Seconds()
	hitRate := 0.0
	if ok > 0 {
		// Anything not recomputed from scratch counts as served from
		// cache: memory hit, disk hit, or a collapsed singleflight wait.
		hitRate = float64(hits+diskHits+collapsed) / float64(ok)
	}

	fmt.Printf("rploadgen: %d requests (%d programs, seed %d, size %s), -c %d", *n, *unique, *seed, *size, *conc)
	if *qps > 0 {
		fmt.Printf(", target %.0f qps", *qps)
	}
	fmt.Println()
	fmt.Printf("elapsed %v  throughput %.1f req/s  ok %d  rejected %d  timeouts %d  client-err %d  server-err %d  transport-err %d\n",
		elapsed.Round(time.Millisecond), throughput, ok, rejected, timeouts, clientErrs, serverErrs, transportErrs)
	fmt.Printf("retries %d  gave-up %d\n", totalRetries, gaveUp)
	fmt.Printf("latency p50 %v  p95 %v  p99 %v  mean %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), mean.Round(time.Microsecond))
	fmt.Printf("cache: %d memory, %d disk, %d collapsed, %d misses (hit rate %.1f%%)  outcome mismatches: %d\n",
		hits, diskHits, collapsed, misses, hitRate*100, mismatches)

	if *jsonPath != "" {
		rec := serveRecord{
			SchemaVersion:     report.SchemaVersion,
			Addr:              *addr,
			Requests:          *n,
			Concurrency:       *conc,
			TargetQPS:         *qps,
			Unique:            *unique,
			Seed:              *seed,
			Size:              *size,
			Check:             *check,
			ElapsedMS:         float64(elapsed.Microseconds()) / 1000,
			ThroughputRPS:     throughput,
			P50MS:             ms(pct(0.50)),
			P95MS:             ms(pct(0.95)),
			P99MS:             ms(pct(0.99)),
			MeanMS:            ms(mean),
			OK:                ok,
			Rejected:          rejected,
			Retries:           totalRetries,
			GaveUp:            gaveUp,
			Timeouts:          timeouts,
			ClientErrors:      clientErrs,
			ServerErrors:      serverErrs,
			TransportErrors:   transportErrs,
			CacheHits:         hits,
			DiskHits:          diskHits,
			Collapsed:         collapsed,
			CacheMisses:       misses,
			CacheHitRate:      hitRate,
			OutcomeMismatches: mismatches,
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if *outcomesPath != "" {
		// One SHA-256 per program, keyed by program index. Two runs
		// against equivalent servers must produce identical files —
		// that's the chaos harness's byte-identity check.
		fps := make(map[string]string, len(canonical))
		for prog, outcome := range canonical {
			sum := sha256.Sum256(outcome)
			fps[strconv.Itoa(prog)] = hex.EncodeToString(sum[:])
		}
		data, err := json.MarshalIndent(fps, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outcomesPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *outcomesPath)
	}

	if ok == 0 {
		fatal(fmt.Errorf("no request succeeded"))
	}
	if serverErrs > 0 || mismatches > 0 || transportErrs > 0 {
		fatal(fmt.Errorf("%d server errors, %d outcome mismatches, %d transport errors",
			serverErrs, mismatches, transportErrs))
	}
	if diskHits < *minDiskHits {
		fatal(fmt.Errorf("only %d disk-tier hits, need %d (cold tier did not survive)", diskHits, *minDiskHits))
	}
}

// retryAfter parses a Retry-After header in whole seconds; a missing or
// malformed header falls back to a short fixed delay.
func retryAfter(h string) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 100 * time.Millisecond
}

// serveRecord is the machine-readable BENCH_serve.json shape, stamped
// with the shared report.SchemaVersion like every other BENCH record.
type serveRecord struct {
	SchemaVersion     int     `json:"schema_version"`
	Addr              string  `json:"addr"`
	Requests          int     `json:"requests"`
	Concurrency       int     `json:"concurrency"`
	TargetQPS         float64 `json:"target_qps"`
	Unique            int     `json:"unique_programs"`
	Seed              int64   `json:"seed"`
	Size              string  `json:"size"`
	Check             string  `json:"check"`
	ElapsedMS         float64 `json:"elapsed_ms"`
	ThroughputRPS     float64 `json:"throughput_rps"`
	P50MS             float64 `json:"p50_ms"`
	P95MS             float64 `json:"p95_ms"`
	P99MS             float64 `json:"p99_ms"`
	MeanMS            float64 `json:"mean_ms"`
	OK                int     `json:"ok"`
	Rejected          int     `json:"rejected"`
	Retries           int     `json:"retries"`
	GaveUp            int     `json:"gave_up"`
	Timeouts          int     `json:"timeouts"`
	ClientErrors      int     `json:"client_errors"`
	ServerErrors      int     `json:"server_errors"`
	TransportErrors   int     `json:"transport_errors"`
	CacheHits         int     `json:"cache_hits"`
	DiskHits          int     `json:"disk_hits"`
	Collapsed         int     `json:"collapsed"`
	CacheMisses       int     `json:"cache_misses"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	OutcomeMismatches int     `json:"outcome_mismatches"`
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rploadgen:", err)
	os.Exit(1)
}

// Command rpserved is the long-running promotion service: it accepts
// mini-C programs plus pipeline options over HTTP/JSON and serves
// structured promotion outcomes from a bounded worker pool behind a
// content-addressed result cache.
//
// Usage:
//
//	rpserved -addr :8080 -server-workers 4 -queue 8 -cache 1024
//	rpserved -addr 127.0.0.1:0 -port-file rpserved.port   # ephemeral port
//	rpserved -cache-dir /var/cache/rpserved -rate-rps 50  # durable + rate limited
//
// Endpoints:
//
//	POST /v1/promote   source + options → outcome JSON (see internal/server)
//	GET  /healthz      200 while alive, 503 while draining
//	GET  /readyz       200 while accepting load, 503 while draining or saturated
//	GET  /metrics      Prometheus text counters
//
// On SIGTERM/SIGINT the server stops accepting connections, drains
// in-flight requests (bounded by -drain-timeout), and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
		portFile     = flag.String("port-file", "", "write the bound host:port to this file once listening")
		workers      = flag.Int("server-workers", 0, "concurrent pipeline runs (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "requests allowed to wait beyond the running ones (0 = 2x workers, -1 = none)")
		cacheEntries = flag.Int("cache", 0, "content-addressed result cache capacity in entries (0 = 1024, -1 = off)")
		maxSteps     = flag.Int64("max-steps", 0, "per-request interpreter step ceiling (0 = 50M)")
		maxTimeout   = flag.Duration("max-timeout", 0, "per-request interpreter wall-clock ceiling (0 = 10s)")
		pipeWorkers  = flag.Int("workers", 1, "default per-request transform worker count")
		maxSource    = flag.Int64("max-source-bytes", 0, "request body size bound (0 = 1MiB)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		enableFaults = flag.Bool("enable-faults", false, "allow requests to inject deterministic faults (tests/chaos only)")
		cacheDir     = flag.String("cache-dir", "", "directory for the durable on-disk cache tier (empty = memory only)")
		cacheDisk    = flag.Int64("cache-disk-bytes", 0, "on-disk cache tier byte budget (0 = 256MiB, -1 = unbounded)")
		rateRPS      = flag.Float64("rate-rps", 0, "per-client admission rate in requests/sec (0 = no rate limiting)")
		rateBurst    = flag.Int("rate-burst", 0, "per-client token-bucket burst (0 = max(4, 2x rate))")
		chaosDisk    = flag.String("chaos-disk", "", "inject disk faults, e.g. read=0.3,write=0.3,checksum=0.1,slow=2ms,seed=7 (chaos drills only)")
		chaosSlow    = flag.Duration("chaos-slow", 0, "emulated per-request backend service time holding a worker slot (capacity experiments only)")
		bytecode     = flag.Bool("bytecode", false, "run measurement interpretation on the compiled bytecode path")
	)
	flag.Parse()

	var diskChaos *faults.DiskInjector
	if *chaosDisk != "" {
		plan, err := faults.ParseDiskPlan(*chaosDisk)
		if err != nil {
			fatal(err)
		}
		diskChaos = faults.NewDisk(plan)
		fmt.Printf("rpserved: CHAOS MODE — injecting disk faults (%s)\n", plan)
	}

	srv, err := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheEntries,
		MaxSourceBytes:  *maxSource,
		MaxSteps:        *maxSteps,
		MaxTimeout:      *maxTimeout,
		PipelineWorkers: *pipeWorkers,
		EnableFaults:    *enableFaults,
		CacheDir:        *cacheDir,
		CacheDiskBytes:  *cacheDisk,
		RateLimit:       *rateRPS,
		RateBurst:       *rateBurst,
		DiskChaos:       diskChaos,
		Bytecode:        *bytecode,
		ChaosSlow:       *chaosSlow,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		// Written atomically (tmp + rename) so a poller never reads a
		// half-written address.
		tmp := *portFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, *portFile); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("rpserved: listening on %s\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Printf("rpserved: %v — draining\n", s)
	case err := <-serveErr:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Shutdown stops the listener and waits for active HTTP handlers;
	// Drain additionally flips /healthz and refuses any request that
	// slipped in, so the two together give the clean-exit contract.
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	if err := srv.Drain(ctx); err != nil {
		fatal(err)
	}
	fmt.Println("rpserved: drained, exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpserved:", err)
	os.Exit(1)
}

// Command rpanalyze runs the static IR diagnostics over a program
// without transforming it: dead stores, unreachable blocks, SSA
// dominance violations, never-promotable memory webs (with the
// blocking alias reason), and register-pressure hotspots. Input is
// mini-C or the textual-IR dialect (detected by extension, .mc/.c vs
// .ll, or forced with -lang).
//
// Usage:
//
//	rpanalyze file.c            # human report
//	rpanalyze kernel.ll         # imported textual IR
//	rpanalyze -json file.c      # versioned JSON report
//	rpanalyze -rules dead-store,pressure-hotspot file.c
//	rpanalyze -pressure-threshold 6 file.c
//	rpanalyze -strict file.c    # exit 1 on any error-severity finding
//	rpanalyze -list-rules
//	cat file.c | rpanalyze -    # read program from stdin (-lang to override)
//
// The same rules run inside the pipeline when Options.Diagnose is set;
// this command is the standalone entry point.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/alias"
	"repro/internal/diag"
	"repro/internal/ir"
	"repro/internal/irimport"
	"repro/internal/source"
)

func main() {
	var (
		lang      = flag.String("lang", "", "input language override: mc or ll (default: detect from the file extension; stdin defaults to mc)")
		jsonOut   = flag.Bool("json", false, "emit the versioned JSON report instead of the human one")
		rules     = flag.String("rules", "", "comma-separated rule subset (default: all; see -list-rules)")
		threshold = flag.Int("pressure-threshold", 0, "pressure-hotspot threshold (0 = default)")
		strict    = flag.Bool("strict", false, "exit non-zero when any error-severity finding is reported")
		listRules = flag.Bool("list-rules", false, "list the registered rules and exit")
	)
	flag.Parse()

	if *listRules {
		for _, r := range diag.Rules() {
			fmt.Printf("%-18s %-5s %s\n", r.Name, r.Severity, r.Desc)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rpanalyze [flags] file.c  (or - for stdin; see -h)")
		os.Exit(2)
	}
	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	srcLang := *lang
	switch srcLang {
	case "":
		if flag.Arg(0) == "-" {
			srcLang = irimport.LangMiniC
		} else if srcLang, err = irimport.DetectLang(flag.Arg(0)); err != nil {
			fatal(err)
		}
	case irimport.LangMiniC, irimport.LangIR:
	default:
		fatal(fmt.Errorf("unknown -lang %q (want mc or ll)", srcLang))
	}

	var prog *ir.Program
	if srcLang == irimport.LangIR {
		prog, err = irimport.Parse(flag.Arg(0), src)
	} else {
		prog, err = source.Compile(src)
	}
	if err != nil {
		fatal(fmt.Errorf("compile: %w", err))
	}
	if err := alias.Analyze(prog); err != nil {
		fatal(fmt.Errorf("alias analysis: %w", err))
	}

	opts := diag.Options{PressureThreshold: *threshold}
	if *rules != "" {
		for _, r := range strings.Split(*rules, ",") {
			if r = strings.TrimSpace(r); r != "" {
				opts.Rules = append(opts.Rules, r)
			}
		}
	}
	findings, err := diag.AnalyzeProgram(prog, opts)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		data, err := diag.FormatJSON(findings)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
	} else {
		fmt.Print(diag.Format(findings))
	}

	if *strict && diag.NewReport(findings).Errors > 0 {
		os.Exit(1)
	}
}

// readSource loads the program text from a file, or stdin for "-".
func readSource(path string) (string, error) {
	if path == "-" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(path)
	return string(data), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpanalyze:", err)
	os.Exit(1)
}

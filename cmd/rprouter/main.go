// Command rprouter is the cluster front door for a fleet of rpserved
// replicas: it places each request on a consistent-hash ring keyed by
// the same content-addressed cache key the replicas compute, hedges
// tail-latency requests against the key's next replica, enforces
// per-tenant quotas, and keeps the ring healthy via /readyz probes.
//
// Usage:
//
//	rprouter -replicas 127.0.0.1:9001,127.0.0.1:9002 -addr :8080
//	rprouter -replicas ... -hedge-delay 0        # derive delay from replica p95
//	rprouter -replicas ... -quota-rps 50         # per-tenant token bucket
//
// The key-ceiling flags (-workers, -max-steps, -max-timeout) MUST
// match the replicas' flags: they feed the option-defaulting step of
// the cache key, and a mismatch silently degrades cache locality
// (requests still succeed — placement just stops lining up with the
// replicas' own keys).
//
// Endpoints:
//
//	POST /v1/promote   proxied to the key's replica (see internal/router)
//	GET  /healthz      200 while alive
//	GET  /readyz       200 while >=1 replica is healthy and not draining
//	GET  /metrics      aggregated Prometheus text (cluster + per-replica)
//	GET  /v1/cluster   JSON ring/health/load view for operators
//
// On SIGTERM/SIGINT the router stops accepting connections, drains
// in-flight proxied requests (bounded by -drain-timeout), and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:0 picks an ephemeral port)")
		portFile     = flag.String("port-file", "", "write the bound host:port to this file once listening")
		replicas     = flag.String("replicas", "", "comma-separated replica host:port list (required)")
		vnodes       = flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = 128)")
		loadFactor   = flag.Float64("load-factor", 0, "bounded-load factor: spill a key off its primary above factor x mean inflight (0 = 1.25)")
		hedgeDelay   = flag.Duration("hedge-delay", 0, "fixed hedge delay; 0 derives it from replica p95, negative disables hedging")
		hedgeMin     = flag.Duration("hedge-min", 0, "floor for the derived hedge delay (0 = 2ms)")
		hedgeMax     = flag.Duration("hedge-max", 0, "ceiling for the derived hedge delay (0 = 1s)")
		quotaRPS     = flag.Float64("quota-rps", 0, "per-tenant admission rate in requests/sec (0 = no quotas)")
		quotaBurst   = flag.Int("quota-burst", 0, "per-tenant token-bucket burst (0 = max(4, 2x rate))")
		probeEvery   = flag.Duration("probe-interval", 0, "replica /readyz probe interval (0 = 250ms)")
		probeTimeout = flag.Duration("probe-timeout", 0, "per-probe timeout (0 = 1s)")
		failThresh   = flag.Int("fail-threshold", 0, "consecutive failed probes before a replica leaves the ring (0 = 2)")
		okThresh     = flag.Int("ok-threshold", 0, "consecutive ok probes before a demoted replica rejoins (0 = 1)")
		pipeWorkers  = flag.Int("workers", 1, "replicas' default per-request transform worker count (key ceiling)")
		maxSteps     = flag.Int64("max-steps", 0, "replicas' interpreter step ceiling (key ceiling, 0 = 50M)")
		maxTimeout   = flag.Duration("max-timeout", 0, "replicas' interpreter wall-clock ceiling (key ceiling, 0 = 10s)")
		maxSource    = flag.Int64("max-source-bytes", 0, "request body size bound (0 = 1MiB)")
		proxyTimeout = flag.Duration("proxy-timeout", 0, "end-to-end deadline for one proxied request (0 = 60s)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	)
	flag.Parse()

	var list []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			list = append(list, r)
		}
	}
	if len(list) == 0 {
		fatal(errors.New("-replicas is required (comma-separated host:port list)"))
	}

	rt, err := router.New(router.Config{
		Replicas:       list,
		VNodes:         *vnodes,
		LoadFactor:     *loadFactor,
		HedgeDelay:     *hedgeDelay,
		HedgeMin:       *hedgeMin,
		HedgeMax:       *hedgeMax,
		QuotaRPS:       *quotaRPS,
		QuotaBurst:     *quotaBurst,
		ProbeInterval:  *probeEvery,
		ProbeTimeout:   *probeTimeout,
		FailThreshold:  *failThresh,
		OkThreshold:    *okThresh,
		MaxSourceBytes: *maxSource,
		ProxyTimeout:   *proxyTimeout,
		Ceilings: server.KeyCeilings{
			MaxSteps:        *maxSteps,
			MaxTimeout:      *maxTimeout,
			PipelineWorkers: *pipeWorkers,
		},
	})
	if err != nil {
		fatal(err)
	}
	rt.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		// Written atomically (tmp + rename) so a poller never reads a
		// half-written address.
		tmp := *portFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
		if err := os.Rename(tmp, *portFile); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("rprouter: listening on %s, routing to %d replicas\n", bound, len(list))

	hs := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Printf("rprouter: %v — draining\n", s)
	case err := <-serveErr:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	if err := rt.Drain(ctx); err != nil {
		fatal(err)
	}
	rt.Stop()
	fmt.Println("rprouter: drained, exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rprouter:", err)
	os.Exit(1)
}

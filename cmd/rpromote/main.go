// Command rpromote runs the register promotion pipeline on one mini-C
// program and reports what happened: promotion statistics, static and
// dynamic memory-operation counts before and after, and optionally the
// transformed IR.
//
// Usage:
//
//	rpromote -workload go            # run a built-in benchmark
//	rpromote -file prog.c            # run a mini-C source file
//	rpromote -file prog.c -dump      # also print the final IR
//	rpromote -workload go -alg baseline
//	rpromote -workload go -pressure-cap 8   # capped promotion report
//	rpromote -list                   # list built-in workloads
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"repro/internal/faults"
	"repro/internal/irimport"
	"repro/internal/pipeline"
	"repro/internal/profiling"
	"repro/internal/regalloc"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	var (
		file        = flag.String("file", "", "source file to compile (.mc/.c mini-C or .ll textual IR, by extension)")
		lang        = flag.String("lang", "", "input language override: mc or ll (default: detect from the -file extension)")
		wl          = flag.String("workload", "", "built-in workload name (see -list)")
		list        = flag.Bool("list", false, "list built-in workloads and exit")
		alg         = flag.String("alg", "ssa", "promotion algorithm: ssa, baseline, memopt, none")
		dump        = flag.Bool("dump", false, "print the transformed IR")
		static      = flag.Bool("static-profile", false, "use the static loop-depth profile estimator")
		paper       = flag.Bool("paper-formula", false, "use the paper's exact profit formula (tail stores uncounted)")
		wholeFunc   = flag.Bool("whole-function", false, "promote at whole-function scope (the paper's rejected first approach)")
		preMemOpts  = flag.Bool("memopts", false, "run memory-SSA scalar optimizations before promotion")
		regPressure = flag.Bool("pressure", false, "report register pressure per function")
		pressureCap = flag.Int("pressure-cap", 0, "hard register-pressure cap: promoted code never needs more than max(cap, baseline) colors (0 = off)")
		check       = flag.String("check", "off", "self-checking level: off, boundaries, or paranoid")
		failFast    = flag.Bool("failfast", false, "abort on the first stage failure instead of degrading the function")
		fault       = flag.String("fault", "", "inject a fault at stage[/func][:error|panic], e.g. promote/main:panic")
		verbose     = flag.Bool("verbose-errors", false, "print the full stage failure report (stack and IR snapshot)")
		workers     = flag.Int("workers", 1, "per-function transform workers (0 = GOMAXPROCS, 1 = sequential)")
		timings     = flag.Bool("timings", false, "print per-stage wall times")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fatal(err, false)
	}
	defer func() {
		stopCPU()
		if err := profiling.WriteHeap(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "rpromote:", err)
		}
	}()

	checkLevel, err := pipeline.ParseCheckLevel(*check)
	if err != nil {
		fatal(err, *verbose)
	}
	var injector *faults.Injector
	if *fault != "" {
		plan, err := faults.ParsePlan(*fault)
		if err != nil {
			fatal(err, *verbose)
		}
		if !slices.Contains(pipeline.Stages(), plan.Stage) {
			fatal(fmt.Errorf("unknown stage %q (want one of %s)",
				plan.Stage, strings.Join(pipeline.Stages(), ", ")), *verbose)
		}
		injector = faults.New(plan)
	}

	if *list {
		for _, w := range workload.Suite() {
			fmt.Printf("%-10s %s\n", w.Name, w.Description)
		}
		return
	}

	src, name, srcLang, err := loadSource(*file, *wl, *lang)
	if err != nil {
		fatal(err, *verbose)
	}

	var algorithm pipeline.Algorithm
	switch *alg {
	case "ssa":
		algorithm = pipeline.AlgSSA
	case "baseline":
		algorithm = pipeline.AlgBaseline
	case "memopt":
		algorithm = pipeline.AlgMemOpt
	case "none":
		algorithm = pipeline.AlgNone
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg), *verbose)
	}

	out, err := pipeline.Run(src, pipeline.Options{
		Lang:               srcLang,
		Algorithm:          algorithm,
		StaticProfile:      *static,
		PaperProfitFormula: *paper,
		WholeFunctionScope: *wholeFunc,
		PreMemOpts:         *preMemOpts,
		Check:              checkLevel,
		FailFast:           *failFast,
		Faults:             injector,
		Workers:            *workers,
		PressureCap:        *pressureCap,
	})
	if err != nil {
		fatal(err, *verbose)
	}

	fmt.Printf("program: %s (algorithm: %s, check: %s)\n\n", name, algorithm, checkLevel)
	for _, d := range out.Degraded {
		fmt.Printf("DEGRADED %s at stage %s: %v\n", d.Func, d.Stage, d.Err.Err)
	}
	if len(out.Degraded) > 0 {
		fmt.Println()
	}
	fmt.Printf("static  loads: %6d -> %6d    stores: %6d -> %6d\n",
		out.StaticBefore.Loads, out.StaticAfter.Loads,
		out.StaticBefore.Stores, out.StaticAfter.Stores)
	fmt.Printf("dynamic loads: %6d -> %6d    stores: %6d -> %6d\n",
		out.Before.DynLoads(), out.After.DynLoads(),
		out.Before.DynStores(), out.After.DynStores())
	total := out.Before.DynMemOps()
	if total > 0 {
		saved := total - out.After.DynMemOps()
		fmt.Printf("dynamic memory operations removed: %d of %d (%.1f%%)\n",
			saved, total, float64(saved)/float64(total)*100)
	}
	s := out.TotalStats
	fmt.Printf("\nwebs: %d considered, %d promoted, %d load-only, %d rejected\n",
		s.WebsConsidered, s.WebsPromoted, s.WebsLoadOnly, s.WebsRejected)
	fmt.Printf("loads: %d replaced, %d inserted; stores: %d deleted, %d inserted\n",
		s.LoadsReplaced, s.LoadsInserted, s.StoresDeleted, s.StoresInserted)

	if equalOutputs(out) {
		fmt.Println("\nsemantics check: outputs and final memory identical ✓")
	} else {
		fmt.Println("\nsemantics check: MISMATCH — this is a bug")
		os.Exit(1)
	}

	if *timings {
		fmt.Println()
		fmt.Print(report.FormatStageTimings(report.SumStageTimings(out)))
	}

	if *regPressure {
		fmt.Println()
		results, names := regalloc.AllocateProgram(out.Prog)
		for _, fn := range names {
			r := results[fn]
			fmt.Printf("pressure %-16s colors=%d maxlive=%d nodes=%d edges=%d\n",
				fn, r.Colors, r.MaxLive, r.Nodes, r.Edges)
		}
	}

	if *pressureCap > 0 {
		fmt.Println()
		results, names := regalloc.AllocateProgram(out.Prog)
		for _, fn := range names {
			pres := out.Pressure[fn]
			if pres == nil {
				continue
			}
			fmt.Printf("cap %-16s baseline=%d uncapped=%d final=%d effcap=%d budget=%d trials=%d demoted=%d\n",
				fn, pres.BaselineColors, pres.UncappedColors, pres.FinalColors,
				pres.EffectiveCap, pres.BudgetUsed, pres.Trials, pres.Stats.WebsDemoted)
			if r := results[fn]; r != nil && r.Colors > pres.EffectiveCap {
				fmt.Printf("cap %-16s VIOLATION: emitted IR needs %d colors\n", fn, r.Colors)
				os.Exit(1)
			}
		}
	}

	if *dump {
		fmt.Println()
		fmt.Print(out.Prog)
	}
}

// loadSource resolves the program text and its input language: an
// explicit -lang wins, otherwise -file detects by extension and
// workloads carry their own tag.
func loadSource(file, wl, lang string) (src, name, srcLang string, err error) {
	if lang != "" && lang != irimport.LangMiniC && lang != irimport.LangIR {
		return "", "", "", fmt.Errorf("unknown -lang %q (want mc or ll)", lang)
	}
	switch {
	case file != "" && wl != "":
		return "", "", "", fmt.Errorf("use either -file or -workload, not both")
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return "", "", "", err
		}
		if lang == "" {
			if lang, err = irimport.DetectLang(file); err != nil {
				return "", "", "", err
			}
		}
		return string(data), file, lang, nil
	case wl != "":
		w, ok := workload.ByName(wl)
		if !ok {
			return "", "", "", fmt.Errorf("unknown workload %q (try -list)", wl)
		}
		if lang == "" {
			lang = w.Lang
		}
		return w.Src, "workload:" + w.Name, lang, nil
	}
	return "", "", "", fmt.Errorf("one of -file or -workload is required")
}

func equalOutputs(out *pipeline.Outcome) bool {
	if out.Before == nil || out.After == nil {
		return true
	}
	if len(out.Before.Output) != len(out.After.Output) {
		return false
	}
	for i := range out.Before.Output {
		if out.Before.Output[i] != out.After.Output[i] {
			return false
		}
	}
	for name, img := range out.Before.Globals {
		other := out.After.Globals[name]
		if len(img) != len(other) {
			return false
		}
		for i := range img {
			if img[i] != other[i] {
				return false
			}
		}
	}
	return true
}

// fatal prints the error and exits non-zero. Stage failures come out as
// their structured one-line message; -verbose-errors adds the captured
// stack and IR snapshot.
func fatal(err error, verbose bool) {
	var se *pipeline.StageError
	if verbose && errors.As(err, &se) {
		fmt.Fprintln(os.Stderr, "rpromote:", se.Detail())
	} else {
		fmt.Fprintln(os.Stderr, "rpromote:", err)
	}
	os.Exit(1)
}

#!/bin/sh
# chaos_smoke.sh — kill-and-restart plus disk-fault drill for rpserved.
#
# Three phases, all replaying the same deterministic mix (seed 1,
# 4 programs, small size) and fingerprinting per-program outcomes:
#
#   1. pristine   — memory-only server; records the reference outcomes.
#   2. kill/warm  — server with a durable cache dir is populated, then
#                   SIGKILLed mid-load. A restart over the same dir must
#                   serve the mix with at least one disk hit per program
#                   (warm start) and byte-identical outcomes.
#   3. disk chaos — server over a fresh dir with injected disk read/
#                   write/checksum faults and slow IO. Faults may cost
#                   cache hits, never correctness: no 5xx, no divergence,
#                   outcomes byte-identical to pristine.
#
# Any deviation — a 5xx, an outcome mismatch, a cold restart, a fault
# that surfaces to a client — fails the script.
set -eu

cd "$(dirname "$0")/.."
GO="${GO:-go}"
MIX="-n 64 -c 4 -unique 4 -size small -seed 1"

work="$(mktemp -d /tmp/chaos-smoke.XXXXXX)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

say() { echo "chaos-smoke: $*"; }

$GO build -o bin/rpserved ./cmd/rpserved
$GO build -o bin/rploadgen ./cmd/rploadgen

# start_server <extra flags...> — boots rpserved on an ephemeral port,
# waits for the port file, and sets $server_pid / $server_addr.
start_server() {
    rm -f "$work/port"
    bin/rpserved -addr 127.0.0.1:0 -port-file "$work/port" "$@" &
    server_pid=$!
    i=0
    while [ ! -f "$work/port" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { say "rpserved never published its port"; exit 1; }
        sleep 0.1
    done
    server_addr="$(cat "$work/port")"
}

stop_server() {
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" || true
    server_pid=""
}

# Phase 1: pristine reference run, memory-only.
say "phase 1: pristine reference run"
start_server
bin/rploadgen -addr "$server_addr" $MIX -outcomes "$work/pristine.json"
stop_server

# Phase 2: populate the durable tier, SIGKILL mid-load, restart over the
# same directory, require a warm start with identical bytes.
say "phase 2: populate durable cache, kill -9 mid-load, warm restart"
cache="$work/cache"
start_server -cache-dir "$cache"
bin/rploadgen -addr "$server_addr" $MIX >/dev/null
bin/rploadgen -addr "$server_addr" $MIX -qps 200 >/dev/null 2>&1 &
load_pid=$!
sleep 0.3
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
wait "$load_pid" 2>/dev/null || true  # interrupted load may (rightly) report errors

start_server -cache-dir "$cache"
bin/rploadgen -addr "$server_addr" $MIX -min-disk-hits 4 -outcomes "$work/warm.json"
stop_server
cmp "$work/pristine.json" "$work/warm.json" || {
    say "FAIL: outcomes after kill -9 + warm restart differ from pristine"
    exit 1
}
say "phase 2 ok: warm restart, byte-identical outcomes"

# Phase 3: injected disk faults must never surface to clients. The
# loadgen itself fails the phase on any 5xx, transport error, or
# outcome divergence; the cmp catches silent wrong bytes.
say "phase 3: disk fault injection (read/write/checksum/slow)"
start_server -cache-dir "$work/chaos-cache" \
    -chaos-disk "read=0.3,write=0.3,checksum=0.2,slow=1ms,seed=7"
bin/rploadgen -addr "$server_addr" $MIX -outcomes "$work/chaos.json"
stop_server
cmp "$work/pristine.json" "$work/chaos.json" || {
    say "FAIL: outcomes under disk faults differ from pristine"
    exit 1
}
say "phase 3 ok: faults degraded to recomputation, bytes identical"

say "PASS"

#!/bin/sh
# cluster_smoke.sh — CI drill for the sharded serving tier.
#
# Boots two rpserved replicas (with an emulated 10ms backend service
# time so concurrent identical misses genuinely overlap) behind one
# rprouter, then:
#
#   1. hot-key phase — replays the Zipf-skewed hotkey profile through
#      the router and requires at least one collapsed singleflight wait
#      (the router's per-key placement keeps each hot key's herd on one
#      replica, where the flight group collapses it) and zero outcome
#      mismatches.
#   2. replica-kill phase — kill -9 one replica in the middle of a
#      paced run. The router must fail over in-flight requests and
#      demote the dead replica: the client may see backpressure
#      retries, but zero 5xx, zero transport errors, zero mismatches.
#   3. drain phase — SIGTERM the router mid-load; it must drain and
#      exit 0.
#
# Any deviation fails the script.
set -eu

cd "$(dirname "$0")/.."
GO="${GO:-go}"

work="$(mktemp -d /tmp/cluster-smoke.XXXXXX)"
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

say() { echo "cluster-smoke: $*"; }

$GO build -o bin/rpserved ./cmd/rpserved
$GO build -o bin/rprouter ./cmd/rprouter
$GO build -o bin/rploadgen ./cmd/rploadgen

# wait_port <file> — blocks until a port file appears.
wait_port() {
    i=0
    while [ ! -f "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { say "$1 never appeared"; exit 1; }
        sleep 0.1
    done
}

say "starting 2 replicas (-chaos-slow 10ms) and the router"
bin/rpserved -addr 127.0.0.1:0 -port-file "$work/r1.port" -chaos-slow 10ms -queue 64 &
r1_pid=$!; pids="$pids $r1_pid"
bin/rpserved -addr 127.0.0.1:0 -port-file "$work/r2.port" -chaos-slow 10ms -queue 64 &
r2_pid=$!; pids="$pids $r2_pid"
wait_port "$work/r1.port"; wait_port "$work/r2.port"
r1="$(cat "$work/r1.port")"; r2="$(cat "$work/r2.port")"

bin/rprouter -addr 127.0.0.1:0 -port-file "$work/router.port" -replicas "$r1,$r2" &
router_pid=$!; pids="$pids $router_pid"
wait_port "$work/router.port"
router="$(cat "$work/router.port")"

# Phase 1: hot-key profile; the Zipf herd on each hot key must collapse
# into shared flights (the 10ms service window makes overlap certain).
say "phase 1: hotkey profile through the router (-min-collapsed 1)"
bin/rploadgen -addr "$router" -profile hotkey -n 256 -c 16 -min-collapsed 1
say "phase 1 ok: herds collapsed, outcomes identical"

# Phase 2: kill -9 one replica mid-run. The paced mix leaves the router
# time to demote the dead replica and rebalance; rploadgen itself fails
# the phase on any 5xx, transport error, or outcome divergence.
say "phase 2: kill -9 one replica mid-run"
bin/rploadgen -addr "$router" -n 300 -c 8 -qps 150 -unique 8 -size small -retries 6 &
load_pid=$!
sleep 0.6
kill -9 "$r2_pid"
wait "$r2_pid" 2>/dev/null || true
wait "$load_pid" || { say "FAIL: requests failed across the replica kill"; exit 1; }
say "phase 2 ok: zero failed requests across replica loss"

# Phase 3: SIGTERM the router under load; require a clean drain.
say "phase 3: drain under load"
bin/rploadgen -addr "$router" -n 400 -c 4 -qps 200 -unique 4 -size small >/dev/null 2>&1 &
load_pid=$!
sleep 0.3
kill -TERM "$router_pid"
wait "$router_pid" || { say "FAIL: router did not drain cleanly"; exit 1; }
wait "$load_pid" 2>/dev/null || true  # interrupted load may (rightly) report errors
say "phase 3 ok: router drained and exited 0"

say "PASS"

#!/bin/sh
# bench_cluster.sh — the cluster serving experiment: single node versus
# a 4-replica consistent-hash cluster, hedged versus unhedged tails,
# and a replica-kill rebalance drill. Writes BENCH_cluster.json.
#
# Profiles:
#
#   single_steady / cluster_steady
#       The raw CPU-bound replay mix (cache-heavy) against one replica
#       directly and against rprouter + 4 replicas. On a single-CPU
#       host every replica shares one core, so the cluster CANNOT beat
#       the node on CPU-bound traffic — this pair is recorded for
#       honesty, and the machine caveat travels in the record.
#
#   single_capacity / cluster_capacity
#       The scale-out claim, made measurable on one host: every
#       pipeline execution holds its (single) worker slot for an
#       emulated 10ms backend service time (-chaos-slow), and the mix
#       never repeats a program, so per-replica capacity is
#       slots/service-time (~100 miss/s) rather than CPU. Four
#       replicas must deliver >= 3x the single node's throughput, with
#       p99 no worse than 2x.
#
#   spike_unhedged / spike_hedged
#       One replica is degraded (-chaos-slow 40ms vs 5ms for the
#       rest); a spike-shaped no-reuse mix runs through the router
#       with hedging off, then with a fixed 10ms hedge. Hedged p99
#       must beat unhedged p99.
#
#   kill_rebalance
#       4-replica cluster, paced mix, kill -9 one replica mid-run.
#       rploadgen itself fails the run on any 5xx, transport error, or
#       outcome mismatch — surviving the kill with zero failed
#       requests is the pass condition.
#
# Assertions (any failure exits non-zero):
#   - cluster_capacity throughput >= 3x single_capacity throughput
#   - cluster_capacity p99 <= 2x single_capacity p99
#   - spike_hedged p99 < spike_unhedged p99
#   - every profile: zero outcome mismatches (enforced inside rploadgen)
set -eu

cd "$(dirname "$0")/.."
GO="${GO:-go}"

work="$(mktemp -d /tmp/bench-cluster.XXXXXX)"
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

say() { echo "bench-cluster: $*"; }

$GO build -o bin/rpserved ./cmd/rpserved
$GO build -o bin/rprouter ./cmd/rprouter
$GO build -o bin/rploadgen ./cmd/rploadgen

wait_port() {
    i=0
    while [ ! -f "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { say "$1 never appeared"; exit 1; }
        sleep 0.1
    done
}

# start_replica <name> <extra flags...> — sets $last_pid, writes $work/<name>.port
start_replica() {
    name="$1"; shift
    rm -f "$work/$name.port"
    bin/rpserved -addr 127.0.0.1:0 -port-file "$work/$name.port" "$@" >/dev/null &
    last_pid=$!; pids="$pids $last_pid"
    wait_port "$work/$name.port"
}

start_router() {
    rm -f "$work/router.port"
    bin/rprouter -addr 127.0.0.1:0 -port-file "$work/router.port" "$@" >/dev/null &
    last_pid=$!; pids="$pids $last_pid"
    wait_port "$work/router.port"
}

stop_all() {
    for p in $pids; do
        kill -TERM "$p" 2>/dev/null || true
        wait "$p" 2>/dev/null || true
    done
    pids=""
}

CORES="$(nproc 2>/dev/null || echo unknown)"
CAVEAT="single host, $CORES core(s): all replicas, the router, and the load generator share the same CPU"

# ---------------------------------------------------------------- steady
say "steady: single node (direct)"
start_replica s1 -queue 64
bin/rploadgen -addr "$(cat "$work/s1.port")" -n 2048 -c 16 -unique 16 -size small \
    -json "$work/single_steady.json" -note "direct, CPU-bound; $CAVEAT" >/dev/null
stop_all

say "steady: 4-replica cluster (via rprouter)"
start_replica c1 -queue 64; start_replica c2 -queue 64
start_replica c3 -queue 64; start_replica c4 -queue 64
start_router -replicas "$(cat "$work/c1.port"),$(cat "$work/c2.port"),$(cat "$work/c3.port"),$(cat "$work/c4.port")" \
    -hedge-delay=-1ms
bin/rploadgen -addr "$(cat "$work/router.port")" -n 2048 -c 16 -unique 16 -size small \
    -json "$work/cluster_steady.json" -note "routed, CPU-bound; $CAVEAT" >/dev/null
stop_all

# -------------------------------------------------------------- capacity
# No-reuse mix (unique == n) so every request is a pipeline execution
# holding its worker slot for the emulated service time; replica
# capacity = 1 slot / 5ms = ~200 req/s.
say "capacity: single node, 1 worker, 10ms emulated service time"
start_replica s1 -server-workers 1 -queue 64 -chaos-slow 10ms
bin/rploadgen -addr "$(cat "$work/s1.port")" -n 192 -c 16 -unique 192 -size small \
    -json "$work/single_capacity.json" -note "slot-bound: 1 worker x 10ms service time, no-reuse mix; $CAVEAT" >/dev/null
stop_all

say "capacity: 4-replica cluster, same per-replica limits"
start_replica c1 -server-workers 1 -queue 64 -chaos-slow 10ms
start_replica c2 -server-workers 1 -queue 64 -chaos-slow 10ms
start_replica c3 -server-workers 1 -queue 64 -chaos-slow 10ms
start_replica c4 -server-workers 1 -queue 64 -chaos-slow 10ms
start_router -replicas "$(cat "$work/c1.port"),$(cat "$work/c2.port"),$(cat "$work/c3.port"),$(cat "$work/c4.port")" \
    -hedge-delay=-1ms
bin/rploadgen -addr "$(cat "$work/router.port")" -n 768 -c 16 -unique 768 -size small \
    -json "$work/cluster_capacity.json" -note "slot-bound: 4x(1 worker x 10ms), no-reuse mix; $CAVEAT" >/dev/null
stop_all

# ----------------------------------------------------------------- spike
# Replica 1 is degraded 8x; the spike mix never reuses programs so the
# degradation stays visible. Hedging off, then a fixed 10ms hedge.
spike_cluster() {
    start_replica c1 -server-workers 1 -queue 64 -chaos-slow 40ms
    start_replica c2 -server-workers 1 -queue 64 -chaos-slow 5ms
    start_replica c3 -server-workers 1 -queue 64 -chaos-slow 5ms
    start_replica c4 -server-workers 1 -queue 64 -chaos-slow 5ms
    start_router -replicas "$(cat "$work/c1.port"),$(cat "$work/c2.port"),$(cat "$work/c3.port"),$(cat "$work/c4.port")" \
        "$@"
}

say "spike: unhedged router over a cluster with one degraded replica"
spike_cluster -hedge-delay=-1ms
bin/rploadgen -addr "$(cat "$work/router.port")" -profile spike -n 256 -unique 256 -qps 120 -base-qps 30 -c 16 \
    -json "$work/spike_unhedged.json" -note "replica 1 degraded to 40ms service time, hedging off; $CAVEAT" >/dev/null
stop_all

say "spike: hedged router (10ms) over the same degraded cluster"
spike_cluster -hedge-delay 10ms
bin/rploadgen -addr "$(cat "$work/router.port")" -profile spike -n 256 -unique 256 -qps 120 -base-qps 30 -c 16 \
    -json "$work/spike_hedged.json" -note "replica 1 degraded to 40ms service time, 10ms hedge; $CAVEAT" >/dev/null
stop_all

# -------------------------------------------------------------- kill
say "kill_rebalance: kill -9 one replica mid-run"
start_replica c1 -queue 64; start_replica c2 -queue 64
start_replica c3 -queue 64; start_replica c4 -queue 64
kill_pid=$last_pid
start_router -replicas "$(cat "$work/c1.port"),$(cat "$work/c2.port"),$(cat "$work/c3.port"),$(cat "$work/c4.port")"
bin/rploadgen -addr "$(cat "$work/router.port")" -n 600 -c 8 -qps 200 -unique 16 -size small -retries 6 \
    -json "$work/kill_rebalance.json" -note "replica killed -9 at ~1s of a 3s paced run; $CAVEAT" >/dev/null &
load_pid=$!
sleep 1
kill -9 "$kill_pid"
wait "$kill_pid" 2>/dev/null || true
wait "$load_pid" || { say "FAIL: requests failed across the replica kill"; exit 1; }
stop_all

# ------------------------------------------------------------- assemble
jsonfield() { # jsonfield <file> <field> — first numeric value of "field"
    sed -n "s/^.*\"$2\": \([0-9.eE+-]*\),*$/\1/p" "$1" | head -n 1
}

single_tp="$(jsonfield "$work/single_capacity.json" throughput_rps)"
cluster_tp="$(jsonfield "$work/cluster_capacity.json" throughput_rps)"
single_p99="$(jsonfield "$work/single_capacity.json" p99_ms)"
cluster_p99="$(jsonfield "$work/cluster_capacity.json" p99_ms)"
unhedged_p99="$(jsonfield "$work/spike_unhedged.json" p99_ms)"
hedged_p99="$(jsonfield "$work/spike_hedged.json" p99_ms)"

speedup="$(awk "BEGIN { printf \"%.2f\", $cluster_tp / $single_tp }")"
say "capacity: single $single_tp req/s vs cluster $cluster_tp req/s (${speedup}x)"
say "capacity p99: single ${single_p99}ms vs cluster ${cluster_p99}ms"
say "spike p99: unhedged ${unhedged_p99}ms vs hedged ${hedged_p99}ms"

fail=0
awk "BEGIN { exit !($cluster_tp >= 3 * $single_tp) }" || { say "FAIL: cluster capacity < 3x single node"; fail=1; }
awk "BEGIN { exit !($cluster_p99 <= 2 * $single_p99) }" || { say "FAIL: cluster p99 > 2x single-node p99"; fail=1; }
awk "BEGIN { exit !($hedged_p99 < $unhedged_p99) }" || { say "FAIL: hedged p99 not better than unhedged"; fail=1; }

{
    printf '{\n  "machine": {"cores": "%s", "caveat": "%s"},\n' "$CORES" "$CAVEAT"
    printf '  "capacity_speedup": %s,\n' "$speedup"
    for rec in single_steady cluster_steady single_capacity cluster_capacity \
               spike_unhedged spike_hedged kill_rebalance; do
        printf '  "%s": ' "$rec"
        cat "$work/$rec.json" | sed 's/^/  /' | sed '1s/^  //'
        [ "$rec" = kill_rebalance ] || printf ',\n'
    done
    printf '}\n'
} > BENCH_cluster.json
say "wrote BENCH_cluster.json"

[ "$fail" -eq 0 ] || exit 1
say "PASS"

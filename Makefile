GO ?= go
FUZZTIME ?= 10s

.PHONY: build test vet race fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzzing pass over every native fuzz target. Each target runs
# for $(FUZZTIME) (default 10s) on top of its seed corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParser$$' -fuzztime $(FUZZTIME) ./internal/source
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineDifferential$$' -fuzztime $(FUZZTIME) ./internal/pipeline
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineFaults$$' -fuzztime $(FUZZTIME) ./internal/pipeline

ci: vet race fuzz-smoke

GO ?= go
FUZZTIME ?= 10s
BATCH ?= 32
JOBS ?= $(shell nproc 2>/dev/null || echo 4)

.PHONY: build test vet race test-par lint fuzz-smoke oracle-smoke oracle bench-par bench-hot bench-bytecode bench-smoke bench-pressure pressure-smoke serve-smoke bench-serve chaos-smoke cluster-smoke bench-cluster ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The parallel-pipeline determinism and isolation tests, explicitly
# under the race detector — the worker pool's acceptance gate.
test-par:
	$(GO) test -race -run 'Parallel|Corpus|DeriveSeed|Timings' ./internal/pipeline/... ./internal/workload/...

# Repo determinism lint: no wall-clock or unseeded randomness in the
# deterministic packages (internal/lint documents the rules).
lint:
	$(GO) run ./cmd/rplint -root .

# Short fuzzing pass over every native fuzz target. Each target runs
# for $(FUZZTIME) (default 10s) on top of its seed corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParser$$' -fuzztime $(FUZZTIME) ./internal/source
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineDifferential$$' -fuzztime $(FUZZTIME) ./internal/pipeline
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineFaults$$' -fuzztime $(FUZZTIME) ./internal/pipeline
	$(GO) test -run '^$$' -fuzz '^FuzzIRImport$$' -fuzztime $(FUZZTIME) ./internal/irimport

# Semantics-oracle smoke: 200 seeded generated programs, each compiled
# with and without promotion and run on all three interpreter paths;
# any observable divergence (or print→reimport round-trip break) fails
# the build with a shrunk counterexample.
oracle-smoke:
	$(GO) run ./cmd/rpbench -oracle 200 -seed 1 -size small -oracle-roundtrip

# Nightly-scale oracle sweep across the size classes, recorded as
# BENCH_oracle.json.
oracle:
	$(GO) run ./cmd/rpbench -oracle 2000 -seed 1 -size small -oracle-roundtrip
	$(GO) run ./cmd/rpbench -oracle 500 -seed 2 -size medium -oracle-roundtrip -json BENCH_oracle.json
	$(GO) run ./cmd/rpbench -oracle 100 -seed 3 -size large -oracle-roundtrip

# Sharded-batch benchmark: the stress corpus under -j 1 vs -j $(JOBS),
# each writing a machine-readable record for before/after comparison.
bench-par:
	$(GO) run ./cmd/rpbench -batch $(BATCH) -j 1       -timings -json BENCH_parallel_j1.json
	$(GO) run ./cmd/rpbench -batch $(BATCH) -j $(JOBS) -timings -json BENCH_parallel_jN.json

# Hot-path benchmark: the same corpus at -j 1 on the legacy paths
# (no analysis cache, map-based interpreter) versus the optimized
# default, then merged into one before/after record. Compare the
# ns_per_function and allocs_per_func fields.
bench-hot:
	$(GO) run ./cmd/rpbench -batch $(BATCH) -j 1 -legacy -timings -json BENCH_hotpath_before.json
	$(GO) run ./cmd/rpbench -batch $(BATCH) -j 1         -timings -json BENCH_hotpath_after.json
	printf '{\n  "before": ' >  BENCH_hotpath.json
	cat BENCH_hotpath_before.json >> BENCH_hotpath.json
	printf ',\n  "after": ' >> BENCH_hotpath.json
	cat BENCH_hotpath_after.json  >> BENCH_hotpath.json
	printf '}\n' >> BENCH_hotpath.json
	rm -f BENCH_hotpath_before.json BENCH_hotpath_after.json

# Interpreter-path benchmark: the call-heavy program on the legacy,
# fast, and bytecode paths, written as one comparison record. Compare
# the speedup_vs_fastpath and allocs_per_run fields.
bench-bytecode:
	$(GO) run ./cmd/rpbench -interp-bench 300 -json BENCH_bytecode.json

# One-iteration pass over every microbenchmark, as a compile-and-run
# smoke test for CI (benchmark numbers from one iteration mean nothing;
# the point is that the benchmarks keep working).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/cfg/ ./internal/ssa/ ./internal/interp/

# Pressure benchmark: the Table-3-style register-pressure record —
# baseline vs uncapped vs capped colors per routine, with the emitted
# IR re-colored as verification that no function exceeds
# max(cap, baseline).
bench-pressure:
	$(GO) run ./cmd/rpbench -pressure-bench -pressure-cap 8 -pressure-gen 8 -json BENCH_pressure.json

# CI smoke for the pressure path: suite only, no JSON artifact.
pressure-smoke:
	$(GO) run ./cmd/rpbench -pressure-bench -pressure-cap 8 -pressure-gen 0

# Serving smoke test: start rpserved on an ephemeral port, replay a
# small deterministic mix through rploadgen (which exits non-zero on
# zero throughput, any 5xx, or outcome divergence), then SIGTERM the
# server in the middle of a second, rate-paced load phase and require
# a clean drain (exit 0) with requests still in flight.
serve-smoke:
	$(GO) build -o bin/rpserved ./cmd/rpserved
	$(GO) build -o bin/rploadgen ./cmd/rploadgen
	rm -f bin/rpserved.port; \
	bin/rpserved -addr 127.0.0.1:0 -port-file bin/rpserved.port & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -f bin/rpserved.port ] && break; sleep 0.1; done; \
	[ -f bin/rpserved.port ] || { echo "rpserved never published its port"; kill $$pid 2>/dev/null; exit 1; }; \
	bin/rploadgen -addr "$$(cat bin/rpserved.port)" -n 64 -c 4 -unique 4 -size small || { kill $$pid 2>/dev/null; exit 1; }; \
	bin/rploadgen -addr "$$(cat bin/rpserved.port)" -n 400 -c 4 -qps 400 -unique 4 -size small >/dev/null 2>&1 & \
	lpid=$$!; \
	sleep 0.3; \
	kill -TERM $$pid; \
	wait $$pid || { echo "rpserved did not drain cleanly under load"; kill $$lpid 2>/dev/null; exit 1; }; \
	wait $$lpid 2>/dev/null; \
	echo "serve-smoke: clean drain under load"

# Serving benchmark: a larger replay mix against a local rpserved,
# recorded as BENCH_serve.json (p50/p95/p99 latency, throughput, cache
# hit rate).
bench-serve:
	$(GO) build -o bin/rpserved ./cmd/rpserved
	$(GO) build -o bin/rploadgen ./cmd/rploadgen
	rm -f bin/rpserved.port; \
	bin/rpserved -addr 127.0.0.1:0 -port-file bin/rpserved.port & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -f bin/rpserved.port ] && break; sleep 0.1; done; \
	[ -f bin/rpserved.port ] || { echo "rpserved never published its port"; kill $$pid 2>/dev/null; exit 1; }; \
	bin/rploadgen -addr "$$(cat bin/rpserved.port)" -n 512 -c 8 -unique 8 -size small -json BENCH_serve.json || { kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid

# Chaos drill: kill -9 mid-load and restart against the same cache dir
# (must come back warm with byte-identical outcomes), then serve through
# injected disk read/write/checksum faults (must degrade to
# recomputation — never a 5xx, never wrong bytes).
chaos-smoke:
	sh scripts/chaos_smoke.sh

# Cluster drill: rprouter + 2 replicas; a Zipf hot-key profile must
# produce collapsed singleflight waits through the router, a replica
# kill -9 mid-run must cost zero failed requests, and a SIGTERM under
# load must drain cleanly.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Cluster experiment: single node vs 4-replica consistent-hash cluster
# (steady and slot-bound capacity profiles), hedged vs unhedged tails
# over a degraded replica, and a kill -9 rebalance drill. Asserts the
# >=3x capacity scale-out, the p99 bound, and the hedging win; writes
# BENCH_cluster.json.
bench-cluster:
	sh scripts/bench_cluster.sh

ci: vet lint race test-par bench-smoke pressure-smoke fuzz-smoke oracle-smoke serve-smoke chaos-smoke cluster-smoke

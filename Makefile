GO ?= go
FUZZTIME ?= 10s
BATCH ?= 32
JOBS ?= $(shell nproc 2>/dev/null || echo 4)

.PHONY: build test vet race test-par fuzz-smoke bench-par bench-hot bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The parallel-pipeline determinism and isolation tests, explicitly
# under the race detector — the worker pool's acceptance gate.
test-par:
	$(GO) test -race -run 'Parallel|Corpus|DeriveSeed|Timings' ./internal/pipeline/... ./internal/workload/...

# Short fuzzing pass over every native fuzz target. Each target runs
# for $(FUZZTIME) (default 10s) on top of its seed corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParser$$' -fuzztime $(FUZZTIME) ./internal/source
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineDifferential$$' -fuzztime $(FUZZTIME) ./internal/pipeline
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineFaults$$' -fuzztime $(FUZZTIME) ./internal/pipeline

# Sharded-batch benchmark: the stress corpus under -j 1 vs -j $(JOBS),
# each writing a machine-readable record for before/after comparison.
bench-par:
	$(GO) run ./cmd/rpbench -batch $(BATCH) -j 1       -timings -json BENCH_parallel_j1.json
	$(GO) run ./cmd/rpbench -batch $(BATCH) -j $(JOBS) -timings -json BENCH_parallel_jN.json

# Hot-path benchmark: the same corpus at -j 1 on the legacy paths
# (no analysis cache, map-based interpreter) versus the optimized
# default, then merged into one before/after record. Compare the
# ns_per_function and allocs_per_func fields.
bench-hot:
	$(GO) run ./cmd/rpbench -batch $(BATCH) -j 1 -legacy -timings -json BENCH_hotpath_before.json
	$(GO) run ./cmd/rpbench -batch $(BATCH) -j 1         -timings -json BENCH_hotpath_after.json
	printf '{\n  "before": ' >  BENCH_hotpath.json
	cat BENCH_hotpath_before.json >> BENCH_hotpath.json
	printf ',\n  "after": ' >> BENCH_hotpath.json
	cat BENCH_hotpath_after.json  >> BENCH_hotpath.json
	printf '}\n' >> BENCH_hotpath.json
	rm -f BENCH_hotpath_before.json BENCH_hotpath_after.json

# One-iteration pass over every microbenchmark, as a compile-and-run
# smoke test for CI (benchmark numbers from one iteration mean nothing;
# the point is that the benchmarks keep working).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/cfg/ ./internal/ssa/ ./internal/interp/

ci: vet race test-par bench-smoke fuzz-smoke

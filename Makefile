GO ?= go
FUZZTIME ?= 10s
BATCH ?= 32
JOBS ?= $(shell nproc 2>/dev/null || echo 4)

.PHONY: build test vet race test-par fuzz-smoke bench-par ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The parallel-pipeline determinism and isolation tests, explicitly
# under the race detector — the worker pool's acceptance gate.
test-par:
	$(GO) test -race -run 'Parallel|Corpus|DeriveSeed|Timings' ./internal/pipeline/... ./internal/workload/...

# Short fuzzing pass over every native fuzz target. Each target runs
# for $(FUZZTIME) (default 10s) on top of its seed corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParser$$' -fuzztime $(FUZZTIME) ./internal/source
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineDifferential$$' -fuzztime $(FUZZTIME) ./internal/pipeline
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineFaults$$' -fuzztime $(FUZZTIME) ./internal/pipeline

# Sharded-batch benchmark: the stress corpus under -j 1 vs -j $(JOBS),
# each writing a machine-readable record for before/after comparison.
bench-par:
	$(GO) run ./cmd/rpbench -batch $(BATCH) -j 1       -timings -json BENCH_parallel_j1.json
	$(GO) run ./cmd/rpbench -batch $(BATCH) -j $(JOBS) -timings -json BENCH_parallel_jN.json

ci: vet race test-par fuzz-smoke
